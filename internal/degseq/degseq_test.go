package degseq

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"dpkron/internal/graph"
	"dpkron/internal/randx"
)

func randomGraph(n int, p float64, seed uint64) *graph.Graph {
	r := rand.New(rand.NewPCG(seed, seed+77))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func isNonDecreasing(x []float64) bool {
	for i := 1; i < len(x); i++ {
		if x[i] < x[i-1]-1e-12 {
			return false
		}
	}
	return true
}

func sse(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func TestSorted(t *testing.T) {
	g := graph.Star(5)
	d := Sorted(g)
	want := []float64{1, 1, 1, 1, 4}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", d, want)
		}
	}
}

func TestIsotonicAlreadyMonotone(t *testing.T) {
	in := []float64{1, 2, 2, 3, 10}
	out := Isotonic(in)
	for i := range in {
		if math.Abs(out[i]-in[i]) > 1e-15 {
			t.Fatalf("Isotonic changed a monotone input: %v -> %v", in, out)
		}
	}
}

func TestIsotonicSingleViolation(t *testing.T) {
	out := Isotonic([]float64{1, 3, 2, 4})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("Isotonic = %v, want %v", out, want)
		}
	}
}

func TestIsotonicAllDecreasing(t *testing.T) {
	out := Isotonic([]float64{5, 4, 3, 2, 1})
	for _, v := range out {
		if math.Abs(v-3) > 1e-12 {
			t.Fatalf("Isotonic of decreasing = %v, want all 3", out)
		}
	}
}

func TestIsotonicEmptyAndSingle(t *testing.T) {
	if out := Isotonic(nil); len(out) != 0 {
		t.Fatal("empty input")
	}
	if out := Isotonic([]float64{7}); len(out) != 1 || out[0] != 7 {
		t.Fatal("singleton input")
	}
}

func TestIsotonicPreservesMean(t *testing.T) {
	// PAVA block means preserve the total sum.
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		in := make([]float64, len(raw))
		var sumIn float64
		for i, v := range raw {
			in[i] = float64(v)
			sumIn += in[i]
		}
		out := Isotonic(in)
		var sumOut float64
		for _, v := range out {
			sumOut += v
		}
		return math.Abs(sumIn-sumOut) < 1e-9*(1+math.Abs(sumIn)) && isNonDecreasing(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIsotonicIdempotent(t *testing.T) {
	f := func(raw []int8) bool {
		in := make([]float64, len(raw))
		for i, v := range raw {
			in[i] = float64(v)
		}
		once := Isotonic(in)
		twice := Isotonic(once)
		for i := range once {
			if math.Abs(once[i]-twice[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The projection property: the PAVA output must have no larger SSE than
// any other monotone candidate. Compare against random monotone vectors.
func TestIsotonicIsL2Projection(t *testing.T) {
	rng := randx.New(5)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.IntN(10)
		in := make([]float64, n)
		for i := range in {
			in[i] = rng.Normal() * 5
		}
		best := Isotonic(in)
		bestSSE := sse(best, in)
		if !isNonDecreasing(best) {
			t.Fatalf("output not monotone: %v", best)
		}
		for cand := 0; cand < 200; cand++ {
			c := make([]float64, n)
			c[0] = rng.Normal() * 5
			for i := 1; i < n; i++ {
				c[i] = c[i-1] + rng.Exponential(1)
			}
			if sse(c, in) < bestSSE-1e-9 {
				t.Fatalf("found better monotone fit %v (sse %v < %v) for input %v",
					c, sse(c, in), bestSSE, in)
			}
		}
	}
}

// Toggling one edge changes the *sorted* degree sequence by at most 2 in
// L1 — the global sensitivity constant used for calibration.
func TestSortedDegreeSensitivityBound(t *testing.T) {
	rng := randx.New(11)
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(20, 0.25, uint64(trial))
		u := rng.IntN(20)
		v := rng.IntN(20)
		if u == v {
			continue
		}
		h := g.WithEdgeToggled(u, v)
		a, b := Sorted(g), Sorted(h)
		var l1 float64
		for i := range a {
			l1 += math.Abs(a[i] - b[i])
		}
		if l1 > GlobalSensitivity+1e-12 {
			t.Fatalf("trial %d: sorted degree L1 distance %v > %v", trial, l1, GlobalSensitivity)
		}
	}
}

func TestPrivateIsMonotoneAndAccurate(t *testing.T) {
	g := randomGraph(200, 0.1, 3)
	rng := randx.New(8)
	priv := Private(g, 1000, rng) // enormous ε: noise negligible
	if !isNonDecreasing(priv) {
		t.Fatal("Private output not monotone")
	}
	exact := Sorted(g)
	for i := range exact {
		if math.Abs(priv[i]-exact[i]) > 0.5 {
			t.Fatalf("index %d: private %v vs exact %v at huge epsilon", i, priv[i], exact[i])
		}
	}
}

func TestPrivatePostprocessingReducesError(t *testing.T) {
	g := randomGraph(300, 0.05, 4)
	exact := Sorted(g)
	var rawErr, postErr float64
	const trials = 30
	for i := 0; i < trials; i++ {
		rng := randx.New(uint64(100 + i))
		raw := PrivateRaw(g, 0.2, rng)
		rawErr += sse(raw, exact)
		postErr += sse(Isotonic(raw), exact)
	}
	if postErr >= rawErr {
		t.Fatalf("constrained inference did not reduce error: post %v >= raw %v", postErr, rawErr)
	}
	// Hay et al. report large gains; expect at least 2x on this size.
	if postErr*2 > rawErr {
		t.Logf("warning: modest improvement: post %v vs raw %v", postErr, rawErr)
	}
}

func TestPrivateDeterministicGivenSeed(t *testing.T) {
	g := randomGraph(50, 0.2, 6)
	a := Private(g, 0.5, randx.New(42))
	b := Private(g, 0.5, randx.New(42))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Private not deterministic for fixed seed")
		}
	}
}

func TestSortedIsSorted(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(30, 0.2, seed%100)
		return sort.Float64sAreSorted(Sorted(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
