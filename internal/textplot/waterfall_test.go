package textplot

import (
	"strings"
	"testing"
)

func TestWaterfall(t *testing.T) {
	out := Waterfall([]WaterfallSpan{
		{Label: "fit/private", Start: 0, Dur: 0.040, Marks: []float64{0.010}},
		{Label: "admission", Start: 0.001, Dur: 0.002, Depth: 1},
		{Label: "ledger-debit", Start: 0.0015, Dur: 0.001, Depth: 2},
		{Label: "run", Start: 0.004, Dur: 0.030, Depth: 1, Open: true},
	}, WaterfallOptions{Width: 40})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 4 rows + axis, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "fit/private") || !strings.Contains(lines[0], "40.0ms") {
		t.Errorf("root row = %q", lines[0])
	}
	if !strings.Contains(lines[0], "!") {
		t.Errorf("root row lacks its event mark: %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "    ledger-debit") {
		t.Errorf("depth-2 row not indented: %q", lines[2])
	}
	if !strings.Contains(lines[3], ">") || !strings.Contains(lines[3], "(open)") {
		t.Errorf("open row = %q", lines[3])
	}
	if !strings.Contains(lines[4], "0") || !strings.Contains(lines[4], "40.0ms") {
		t.Errorf("axis row = %q", lines[4])
	}
	// Rows align: every bar area starts at the same column.
	root := strings.Index(lines[0], "=")
	adm := strings.Index(lines[1], "=")
	if root < 0 || adm < root {
		t.Errorf("bars misaligned:\n%s", out)
	}
}

func TestWaterfallDegenerate(t *testing.T) {
	if got := Waterfall(nil, WaterfallOptions{}); got != "(no spans)\n" {
		t.Errorf("empty waterfall = %q", got)
	}
	// Zero-duration trace must not divide by zero.
	out := Waterfall([]WaterfallSpan{{Label: "x", Start: 5, Dur: 0}}, WaterfallOptions{Width: 10})
	if !strings.Contains(out, "x") || !strings.Contains(out, "=") {
		t.Errorf("degenerate waterfall = %q", out)
	}
}

func TestFmtDur(t *testing.T) {
	for _, tc := range []struct {
		sec  float64
		want string
	}{{2.4e-6, "2µs"}, {0.0123, "12.3ms"}, {3.21, "3.21s"}} {
		if got := fmtDur(tc.sec); got != tc.want {
			t.Errorf("fmtDur(%g) = %q, want %q", tc.sec, got, tc.want)
		}
	}
}
