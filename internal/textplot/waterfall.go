package textplot

import (
	"fmt"
	"strings"
)

// WaterfallSpan is one bar of a trace waterfall: a named interval at
// some nesting depth, with optional instantaneous marks (events)
// rendered inside the bar. Times are seconds relative to any common
// origin — only differences matter.
type WaterfallSpan struct {
	Label string
	Start float64
	Dur   float64
	Depth int  // nesting level; indents the label
	Open  bool // still running when snapshotted
	Marks []float64
}

// WaterfallOptions controls the waterfall canvas.
type WaterfallOptions struct {
	Width int // bar-area columns; default 48
}

// Waterfall renders spans as an ASCII gantt chart, one row per span in
// the given order: indented label, a bar positioned on a shared time
// axis, and the span's duration. Marks draw as '!' inside (or beside)
// the bar; an open span's bar ends in '>'.
//
//	fit/private     ================================  31.2ms
//	  admission     =                                  0.3ms
//	    ledger-debit !                                 0.1ms
func Waterfall(spans []WaterfallSpan, opts WaterfallOptions) string {
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	if opts.Width <= 0 {
		opts.Width = 48
	}
	t0, t1 := spans[0].Start, spans[0].Start
	labelW := 0
	for _, s := range spans {
		if s.Start < t0 {
			t0 = s.Start
		}
		if end := s.Start + s.Dur; end > t1 {
			t1 = end
		}
		if w := 2*s.Depth + len(s.Label); w > labelW {
			labelW = w
		}
	}
	total := t1 - t0
	if total <= 0 {
		total = 1e-9 // all spans instantaneous: every bar lands at column 0
	}
	col := func(t float64) int {
		c := int((t - t0) / total * float64(opts.Width))
		if c < 0 {
			c = 0
		}
		if c > opts.Width-1 {
			c = opts.Width - 1
		}
		return c
	}
	var b strings.Builder
	for _, s := range spans {
		label := strings.Repeat("  ", s.Depth) + s.Label
		b.WriteString(label)
		b.WriteString(strings.Repeat(" ", labelW-len(label)+2))
		bar := make([]byte, opts.Width)
		for i := range bar {
			bar[i] = ' '
		}
		lo, hi := col(s.Start), col(s.Start+s.Dur)
		for i := lo; i <= hi; i++ {
			bar[i] = '='
		}
		if s.Open {
			bar[hi] = '>'
		}
		for _, m := range s.Marks {
			bar[col(m)] = '!'
		}
		b.Write(bar)
		b.WriteString("  ")
		b.WriteString(fmtDur(s.Dur))
		if s.Open {
			b.WriteString(" (open)")
		}
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", labelW+2))
	axis := fmt.Sprintf("0%s%s", strings.Repeat(" ", opts.Width-1-len(fmtDur(total))), fmtDur(total))
	b.WriteString(axis)
	b.WriteByte('\n')
	return b.String()
}

// fmtDur renders a duration in seconds with a unit chosen for
// legibility (µs / ms / s).
func fmtDur(sec float64) string {
	switch {
	case sec < 1e-3:
		return fmt.Sprintf("%.0fµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.1fms", sec*1e3)
	default:
		return fmt.Sprintf("%.2fs", sec)
	}
}
