package textplot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	s := []Series{
		{Name: "linear", X: []float64{1, 2, 3, 4}, Y: []float64{1, 2, 3, 4}},
		{Name: "flat", X: []float64{1, 2, 3, 4}, Y: []float64{2, 2, 2, 2}},
	}
	out := Render(s, Options{Width: 40, Height: 10})
	if !strings.Contains(out, "o linear") || !strings.Contains(out, "+ flat") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "o") {
		t.Fatal("no points plotted")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 13 {
		t.Fatalf("canvas too small: %d lines", len(lines))
	}
}

func TestRenderLogLogSkipsNonPositive(t *testing.T) {
	s := []Series{{Name: "s", X: []float64{0, 1, 10, 100}, Y: []float64{-1, 1, 10, 100}}}
	out := Render(s, Options{LogX: true, LogY: true})
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("bad axis labels:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Render([]Series{{Name: "none"}}, Options{})
	if !strings.Contains(out, "no plottable points") {
		t.Fatalf("empty render = %q", out)
	}
	out = Render([]Series{{Name: "allneg", X: []float64{1}, Y: []float64{-5}}}, Options{LogY: true})
	if !strings.Contains(out, "no plottable points") {
		t.Fatalf("non-positive log render = %q", out)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	out := Render([]Series{{Name: "pt", X: []float64{5}, Y: []float64{7}}}, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "o") {
		t.Fatalf("point not plotted:\n%s", out)
	}
}

func TestMarkersCycle(t *testing.T) {
	var ss []Series
	for i := 0; i < 10; i++ {
		ss = append(ss, Series{Name: "s", X: []float64{1}, Y: []float64{float64(i)}})
	}
	out := Render(ss, Options{})
	if !strings.Contains(out, "@") {
		t.Fatalf("marker cycling failed:\n%s", out)
	}
}
