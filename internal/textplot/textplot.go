// Package textplot renders small ASCII scatter plots so the CLI can
// display the paper's log–log figure panels directly in a terminal.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted curve.
type Series struct {
	Name string
	X, Y []float64
}

// Options controls the canvas.
type Options struct {
	Width  int  // default 72
	Height int  // default 20
	LogX   bool // log-scale the X axis
	LogY   bool // log-scale the Y axis
}

func (o *Options) fill() {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 20
	}
}

var markers = []byte{'o', '+', 'x', '*', '#', '@', '%', '&'}

// Render draws the series onto one canvas with a legend. Non-positive
// values are skipped on log axes.
func Render(series []Series, opts Options) string {
	opts.fill()
	tx := func(v float64) (float64, bool) { return v, true }
	ty := tx
	if opts.LogX {
		tx = logT
	}
	if opts.LogY {
		ty = logT
	}
	// Collect bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if minX > maxX || minY > maxY {
		return "(no plottable points)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			col := int((x - minX) / (maxX - minX) * float64(opts.Width-1))
			row := opts.Height - 1 - int((y-minY)/(maxY-minY)*float64(opts.Height-1))
			if grid[row][col] == ' ' {
				grid[row][col] = mark
			}
		}
	}
	var b strings.Builder
	axisLabel := func(v float64, log bool) string {
		if log {
			return fmt.Sprintf("%.3g", math.Pow(10, v))
		}
		return fmt.Sprintf("%.3g", v)
	}
	for r, row := range grid {
		edge := "|"
		if r == 0 {
			edge = fmt.Sprintf("| %s", axisLabel(maxY, opts.LogY))
		}
		if r == opts.Height-1 {
			edge = fmt.Sprintf("| %s", axisLabel(minY, opts.LogY))
		}
		line := strings.TrimRight(string(row), " ")
		fmt.Fprintf(&b, "%s%s\n", edge, line)
	}
	fmt.Fprintf(&b, "+%s\n", strings.Repeat("-", opts.Width))
	fmt.Fprintf(&b, " %s%s%s\n", axisLabel(minX, opts.LogX),
		strings.Repeat(" ", max(1, opts.Width-16)), axisLabel(maxX, opts.LogX))
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func logT(v float64) (float64, bool) {
	if v <= 0 {
		return 0, false
	}
	return math.Log10(v), true
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
