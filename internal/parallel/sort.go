package parallel

// Radix sorting for the packed int64 edge keys used throughout the
// module (graph.Builder pairs, skg ball-drop dedup). An LSD counting
// sort over 8-bit digits needs no comparator calls and runs in O(m) per
// pass, which beats comparison sorting by a wide margin on the
// million-key inputs the samplers produce; a bytewise OR/AND pre-pass
// skips the digits on which every key agrees (typically most of the
// high bytes, since node ids are far below 2^31).
//
// The parallel path shards each pass with the package's fixed-shard
// partition: per-shard histograms, a serial (digit, shard)-ordered
// prefix scan, and a scatter into precomputed disjoint offsets. The
// scatter is stable and its output depends only on the input, so — like
// every helper here — the result is identical for every worker count.

const (
	radixBuckets = 256
	// radixSerialMin is the input size below which the sharded path's
	// histogram bookkeeping costs more than it saves; smaller inputs
	// sort serially even when more workers are available.
	radixSerialMin = 1 << 15
	// insertionMax is the input size below which a binary-insertion
	// pass beats any radix setup.
	insertionMax = 48
)

// SortInt64 sorts keys ascending in place. All keys must be
// non-negative (the packed-pair encodings used in this module always
// are; negative keys would order after positive ones). scratch is an
// optional reusable buffer: it is grown as needed and returned so
// callers with repeated sorts can avoid reallocating. The sorted result
// is identical for every worker count (workers <= 0 selects
// runtime.GOMAXPROCS(0)).
func SortInt64(workers int, keys, scratch []int64) []int64 {
	n := len(keys)
	if cap(scratch) < n {
		scratch = make([]int64, n)
	}
	scratch = scratch[:n]
	if n <= insertionMax {
		insertionSortInt64(keys)
		return scratch
	}
	w := Normalize(workers)
	if w <= 1 || n < radixSerialMin {
		radixSortSerial(keys, scratch)
		return scratch
	}
	radixSortParallel(w, keys, scratch)
	return scratch
}

func insertionSortInt64(keys []int64) {
	for i := 1; i < len(keys); i++ {
		k := keys[i]
		j := i - 1
		for j >= 0 && keys[j] > k {
			keys[j+1] = keys[j]
			j--
		}
		keys[j+1] = k
	}
}

// activeDigits returns a bitmask of the byte positions on which the
// keys differ: OR and AND aggree on a byte exactly when every key
// carries the same value there, and such digits can be skipped.
func activeDigits(or, and uint64) int {
	active := 0
	for d := 0; d < 8; d++ {
		if byte(or>>(8*uint(d))) != byte(and>>(8*uint(d))) {
			active |= 1 << d
		}
	}
	return active
}

func radixSortSerial(keys, scratch []int64) {
	var or uint64
	and := ^uint64(0)
	for _, k := range keys {
		or |= uint64(k)
		and &= uint64(k)
	}
	active := activeDigits(or, and)
	src, dst := keys, scratch
	var count [radixBuckets]int
	for d := 0; d < 8; d++ {
		if active&(1<<d) == 0 {
			continue
		}
		shift := 8 * uint(d)
		for i := range count {
			count[i] = 0
		}
		for _, k := range src {
			count[byte(uint64(k)>>shift)]++
		}
		total := 0
		for b := 0; b < radixBuckets; b++ {
			c := count[b]
			count[b] = total
			total += c
		}
		for _, k := range src {
			b := byte(uint64(k) >> shift)
			dst[count[b]] = k
			count[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

func radixSortParallel(workers int, keys, scratch []int64) {
	n := len(keys)
	blocks := Blocks(n, DefaultShards)
	S := len(blocks)
	ors := make([]uint64, S)
	ands := make([]uint64, S)
	Run(workers, S, func(s int) {
		var or uint64
		and := ^uint64(0)
		for _, k := range keys[blocks[s].Lo:blocks[s].Hi] {
			or |= uint64(k)
			and &= uint64(k)
		}
		ors[s], ands[s] = or, and
	})
	var or uint64
	and := ^uint64(0)
	for s := 0; s < S; s++ {
		or |= ors[s]
		and &= ands[s]
	}
	active := activeDigits(or, and)

	src, dst := keys, scratch
	hist := make([]int, S*radixBuckets)
	for d := 0; d < 8; d++ {
		if active&(1<<d) == 0 {
			continue
		}
		shift := 8 * uint(d)
		Run(workers, S, func(s int) {
			h := hist[s*radixBuckets : (s+1)*radixBuckets]
			for i := range h {
				h[i] = 0
			}
			for _, k := range src[blocks[s].Lo:blocks[s].Hi] {
				h[byte(uint64(k)>>shift)]++
			}
		})
		// Exclusive prefix in (bucket, shard) order: shard s scatters
		// its bucket-b keys after every lower bucket and after the
		// bucket-b keys of lower shards, which is exactly the stable
		// serial order.
		total := 0
		for b := 0; b < radixBuckets; b++ {
			for s := 0; s < S; s++ {
				idx := s*radixBuckets + b
				c := hist[idx]
				hist[idx] = total
				total += c
			}
		}
		Run(workers, S, func(s int) {
			h := hist[s*radixBuckets : (s+1)*radixBuckets]
			for _, k := range src[blocks[s].Lo:blocks[s].Hi] {
				b := byte(uint64(k) >> shift)
				dst[h[b]] = k
				h[b]++
			}
		})
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// MergeSortedInt64 merges ascending-sorted b into ascending-sorted a
// and returns the result (reusing a's storage when capacity allows).
// Elements common to both appear twice; callers that need a set merge
// disjoint inputs.
func MergeSortedInt64(a, b []int64) []int64 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append(a, b...)
	}
	na, nb := len(a), len(b)
	a = append(a, b...) // grow to final size; tail will be overwritten
	// Merge backwards so a's original prefix is consumed before it is
	// overwritten.
	i, j, k := na-1, nb-1, na+nb-1
	for j >= 0 {
		if i >= 0 && a[i] > b[j] {
			a[k] = a[i]
			i--
		} else {
			a[k] = b[j]
			j--
		}
		k--
	}
	return a
}
