// Package parallel is the concurrency substrate of the module: a
// bounded worker pool with dynamic shard scheduling, deterministic
// work partitioning, and per-shard random streams derived from randx.
//
// Every helper is designed so that the result of a computation is
// bit-identical for every worker count, which is what lets the hot
// paths (SKG sampling, feature counting, ANF propagation, the moment
// and likelihood estimators) run on all cores while seeded experiments
// stay exactly reproducible. Two rules achieve this:
//
//   - Work is split into a fixed number of shards that depends only on
//     the problem size, never on the worker count. Workers pull shards
//     dynamically, so any number of goroutines executes the same shard
//     set.
//   - Order-sensitive state is attached to shards, not workers:
//     per-shard RNG streams are derived serially up front (Streams),
//     and floating-point reductions combine per-shard partials in
//     shard order (SumFloat64), so neither scheduling nor associativity
//     can perturb the outcome.
//
// Integer reductions (SumInt64, MaxInt) are associative and would be
// deterministic under any partition; they use the same fixed sharding
// for uniformity.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dpkron/internal/randx"
)

// DefaultShards is the fixed shard count used by the block helpers.
// It is independent of the worker count — a prerequisite for
// determinism (see the package comment) — and large enough to keep the
// pool load-balanced: with dynamic scheduling, 64 shards keep up to
// ~16 workers busy even when per-shard cost varies by a factor of a
// few, while bounding per-shard bookkeeping (RNG derivation, partial
// buffers) to a constant.
const DefaultShards = 64

// Normalize resolves a worker-count option: values <= 0 select
// runtime.GOMAXPROCS(0), i.e. "use the hardware". It is the single
// defaulting rule for every Workers field in the module's Options
// structs and for pipeline.Run worker budgets.
func Normalize(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Block is a contiguous index range [Lo, Hi).
type Block struct{ Lo, Hi int }

// Len returns Hi - Lo.
func (b Block) Len() int { return b.Hi - b.Lo }

// Blocks splits [0, n) into at most count contiguous, near-equal,
// non-empty blocks. The boundaries depend only on n and count.
func Blocks(n, count int) []Block {
	if n <= 0 || count <= 0 {
		return nil
	}
	if count > n {
		count = n
	}
	out := make([]Block, count)
	for i := 0; i < count; i++ {
		out[i] = Block{Lo: i * n / count, Hi: (i + 1) * n / count}
	}
	return out
}

// PairBlocks splits the row range [0, n) of a lower-triangular pair
// loop — row u visits the u pairs (u, v), v < u — into at most count
// contiguous blocks of approximately equal pair mass, so a block near
// the top of the triangle spans many more rows than one near the
// bottom. The boundaries depend only on n and count.
func PairBlocks(n, count int) []Block {
	if n <= 0 || count <= 0 {
		return nil
	}
	total := int64(n) * int64(n-1) / 2
	if total == 0 {
		return []Block{{Lo: 0, Hi: n}}
	}
	if int64(count) > total {
		count = int(total)
	}
	pairsBelow := func(u int) int64 { return int64(u) * int64(u-1) / 2 }
	out := make([]Block, 0, count)
	lo := 0
	for i := 1; i <= count; i++ {
		want := total * int64(i) / int64(count)
		// Smallest hi with pairsBelow(hi) >= want.
		a, b := lo, n
		for a < b {
			mid := (a + b) / 2
			if pairsBelow(mid) < want {
				a = mid + 1
			} else {
				b = mid
			}
		}
		hi := a
		if i == count {
			hi = n
		}
		if hi > lo {
			out = append(out, Block{Lo: lo, Hi: hi})
			lo = hi
		}
	}
	return out
}

// Run executes fn(shard) for every shard in [0, shards) on up to
// workers goroutines with dynamic (work-stealing counter) scheduling.
// Shards may run concurrently and in any order; fn must tolerate that.
// With workers <= 1 (or a single shard) everything runs on the calling
// goroutine, which is the serial baseline the benchmarks compare
// against.
func Run(workers, shards int, fn func(shard int)) {
	if shards <= 0 {
		return
	}
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			fn(s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				fn(s)
			}
		}()
	}
	wg.Wait()
}

// RunIndexed is Run with the executing worker's index (in [0, workers))
// passed to fn alongside the shard. It exists for commutative
// reductions that want dynamic shard balancing but per-worker
// accumulators or scratch buffers: allocate `workers` buffers, let any
// worker process any shard, and merge afterwards. Only reductions that
// are invariant to shard→worker assignment (integer sums, maxima)
// should use it; order-sensitive reductions belong on the per-shard
// helpers.
func RunIndexed(workers, shards int, fn func(worker, shard int)) {
	if shards <= 0 {
		return
	}
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			fn(0, s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				fn(worker, s)
			}
		}(w)
	}
	wg.Wait()
}

// ForBlocks runs fn over the fixed DefaultShards-way split of [0, n)
// on up to workers goroutines. fn receives the shard index and its
// range; writes to disjoint ranges need no synchronization.
func ForBlocks(workers, n int, fn func(shard, lo, hi int)) {
	blocks := Blocks(n, DefaultShards)
	Run(workers, len(blocks), func(s int) { fn(s, blocks[s].Lo, blocks[s].Hi) })
}

// SumInt64 reduces fn over the fixed DefaultShards-way split of [0, n).
// Integer addition is associative, so the result equals the serial sum
// for every worker count.
func SumInt64(workers, n int, fn func(lo, hi int) int64) int64 {
	blocks := Blocks(n, DefaultShards)
	part := make([]int64, len(blocks))
	Run(workers, len(blocks), func(s int) { part[s] = fn(blocks[s].Lo, blocks[s].Hi) })
	var total int64
	for _, p := range part {
		total += p
	}
	return total
}

// SumFloat64 reduces fn over the fixed DefaultShards-way split of
// [0, n), combining the per-shard partials in shard order. Because the
// shard boundaries depend only on n and the reduction order is fixed,
// the (non-associative) floating-point result is bit-identical for
// every worker count — including workers = 1.
func SumFloat64(workers, n int, fn func(lo, hi int) float64) float64 {
	blocks := Blocks(n, DefaultShards)
	part := make([]float64, len(blocks))
	Run(workers, len(blocks), func(s int) { part[s] = fn(blocks[s].Lo, blocks[s].Hi) })
	total := 0.0
	for _, p := range part {
		total += p
	}
	return total
}

// MaxInt reduces fn over the fixed DefaultShards-way split of [0, n)
// by maximum, returning zero for n <= 0.
func MaxInt(workers, n int, fn func(lo, hi int) int) int {
	blocks := Blocks(n, DefaultShards)
	part := make([]int, len(blocks))
	Run(workers, len(blocks), func(s int) { part[s] = fn(blocks[s].Lo, blocks[s].Hi) })
	best := 0
	for _, p := range part {
		if p > best {
			best = p
		}
	}
	return best
}

// Streams derives count independent random sub-streams from rng by
// drawing seeds serially, before any parallel work starts. Attaching
// one stream per shard (never per worker) keeps sampled output
// identical across worker counts. The parent rng advances by count
// draws.
func Streams(rng *randx.Rand, count int) []*randx.Rand {
	out := make([]*randx.Rand, count)
	for i := range out {
		out[i] = rng.Split()
	}
	return out
}
