package parallel

import (
	"context"
	"math/rand"
	"slices"
	"sync/atomic"
	"testing"
)

func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var sum atomic.Int64
		if err := RunCtx(context.Background(), workers, 100, func(s int) { sum.Add(int64(s)) }); err != nil {
			t.Fatal(err)
		}
		if sum.Load() != 4950 {
			t.Errorf("workers=%d: sum = %d, want 4950", workers, sum.Load())
		}
	}
	// nil context takes the same fast path.
	ran := 0
	if err := RunCtx(nil, 1, 3, func(int) { ran++ }); err != nil || ran != 3 {
		t.Errorf("nil ctx: ran=%d err=%v", ran, err)
	}
}

func TestRunCtxPreCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ran := atomic.Int64{}
		err := RunCtx(cancelledCtx(), workers, 1000, func(int) { ran.Add(1) })
		if err != context.Canceled {
			t.Errorf("workers=%d: err = %v, want Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: %d shards ran on a pre-cancelled ctx", workers, ran.Load())
		}
	}
}

func TestRunCtxMidRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := RunCtx(ctx, 4, 10000, func(s int) {
		if ran.Add(1) == 10 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if n := ran.Load(); n >= 10000 {
		t.Errorf("all %d shards ran despite cancellation", n)
	}
}

func TestRunIndexedCtxPreCancelled(t *testing.T) {
	var ran atomic.Int64
	if err := RunIndexedCtx(cancelledCtx(), 4, 100, func(w, s int) { ran.Add(1) }); err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d shards ran", ran.Load())
	}
}

func TestReductionCtxVariantsMatchPlain(t *testing.T) {
	n := 10000
	fI := func(lo, hi int) int64 { return int64(hi - lo) }
	fF := func(lo, hi int) float64 { return float64(hi-lo) * 1.5 }
	live, cancelLive := context.WithCancel(context.Background())
	defer cancelLive()
	for _, workers := range []int{1, 4} {
		si, err := SumInt64Ctx(live, workers, n, fI)
		if err != nil || si != SumInt64(workers, n, fI) {
			t.Errorf("SumInt64Ctx = %d, %v", si, err)
		}
		sf, err := SumFloat64Ctx(live, workers, n, fF)
		if err != nil || sf != SumFloat64(workers, n, fF) {
			t.Errorf("SumFloat64Ctx = %v, %v", sf, err)
		}
	}
	if _, err := SumInt64Ctx(cancelledCtx(), 2, n, fI); err != context.Canceled {
		t.Errorf("SumInt64Ctx pre-cancelled err = %v", err)
	}
	if _, err := SumFloat64Ctx(cancelledCtx(), 2, n, fF); err != context.Canceled {
		t.Errorf("SumFloat64Ctx pre-cancelled err = %v", err)
	}
	if err := ForBlocksCtx(cancelledCtx(), 2, n, func(s, lo, hi int) {}); err != context.Canceled {
		t.Errorf("ForBlocksCtx pre-cancelled err = %v", err)
	}
}

func TestSortInt64CtxMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	live, cancelLive := context.WithCancel(context.Background())
	defer cancelLive()
	for _, n := range []int{0, 10, 1000, 1 << 16} {
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = rng.Int63()
		}
		want := append([]int64(nil), keys...)
		SortInt64(2, want, nil)

		got := append([]int64(nil), keys...)
		if _, err := SortInt64Ctx(live, 2, got, nil); err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got, want) {
			t.Fatalf("n=%d: ctx sort diverged", n)
		}
		// Serial ctx path too.
		got2 := append([]int64(nil), keys...)
		if _, err := SortInt64Ctx(live, 1, got2, nil); err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got2, want) {
			t.Fatalf("n=%d: serial ctx sort diverged", n)
		}
	}
}

func TestSortInt64CtxPreCancelled(t *testing.T) {
	keys := make([]int64, 1<<16)
	for i := range keys {
		keys[i] = int64(len(keys) - i)
	}
	if _, err := SortInt64Ctx(cancelledCtx(), 4, keys, nil); err != context.Canceled {
		t.Fatalf("err = %v, want Canceled", err)
	}
}
