package parallel

// Context-aware variants of the pool helpers. Cancellation is
// cooperative and shard-grained: workers check the context between
// shards (never inside fn), so a live context costs one Err() call per
// shard and a cancelled one stops the pool at the next shard boundary.
// When the context is nil or carries no cancellation signal
// (Done() == nil, e.g. context.Background()), every variant delegates
// to its plain counterpart and costs nothing extra.
//
// The determinism rules of the package are unaffected: a run that
// completes (returns nil) executed exactly the shard set of the plain
// helper, so its result is bit-identical for every worker count. A run
// that observed cancellation returns ctx.Err() and its partial output
// must be discarded.

import (
	"context"
	"sync"
	"sync/atomic"
)

// RunCtx is Run with cooperative cancellation: it returns nil after all
// shards executed, or ctx.Err() if cancellation was observed before
// some claimed shard ran (that shard and any unclaimed ones are
// skipped).
func RunCtx(ctx context.Context, workers, shards int, fn func(shard int)) error {
	if ctx == nil || ctx.Done() == nil {
		Run(workers, shards, fn)
		return nil
	}
	if shards <= 0 {
		return ctx.Err()
	}
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(s)
		}
		return nil
	}
	var next atomic.Int64
	var aborted atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				if ctx.Err() != nil {
					aborted.Store(true)
					return
				}
				fn(s)
			}
		}()
	}
	wg.Wait()
	if aborted.Load() {
		return ctx.Err()
	}
	return nil
}

// RunIndexedCtx is RunIndexed with the cancellation contract of RunCtx.
func RunIndexedCtx(ctx context.Context, workers, shards int, fn func(worker, shard int)) error {
	if ctx == nil || ctx.Done() == nil {
		RunIndexed(workers, shards, fn)
		return nil
	}
	if shards <= 0 {
		return ctx.Err()
	}
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, s)
		}
		return nil
	}
	var next atomic.Int64
	var aborted atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				if ctx.Err() != nil {
					aborted.Store(true)
					return
				}
				fn(worker, s)
			}
		}(w)
	}
	wg.Wait()
	if aborted.Load() {
		return ctx.Err()
	}
	return nil
}

// ForBlocksCtx is ForBlocks with the cancellation contract of RunCtx.
func ForBlocksCtx(ctx context.Context, workers, n int, fn func(shard, lo, hi int)) error {
	blocks := Blocks(n, DefaultShards)
	return RunCtx(ctx, workers, len(blocks), func(s int) { fn(s, blocks[s].Lo, blocks[s].Hi) })
}

// SumInt64Ctx is SumInt64 with the cancellation contract of RunCtx; the
// partial sum of a cancelled run is not returned.
func SumInt64Ctx(ctx context.Context, workers, n int, fn func(lo, hi int) int64) (int64, error) {
	blocks := Blocks(n, DefaultShards)
	part := make([]int64, len(blocks))
	if err := RunCtx(ctx, workers, len(blocks), func(s int) { part[s] = fn(blocks[s].Lo, blocks[s].Hi) }); err != nil {
		return 0, err
	}
	var total int64
	for _, p := range part {
		total += p
	}
	return total, nil
}

// SumFloat64Ctx is SumFloat64 with the cancellation contract of RunCtx.
// A completed sum reduces the per-shard partials in shard order, so it
// is bit-identical to the plain helper for every worker count.
func SumFloat64Ctx(ctx context.Context, workers, n int, fn func(lo, hi int) float64) (float64, error) {
	blocks := Blocks(n, DefaultShards)
	part := make([]float64, len(blocks))
	if err := RunCtx(ctx, workers, len(blocks), func(s int) { part[s] = fn(blocks[s].Lo, blocks[s].Hi) }); err != nil {
		return 0, err
	}
	total := 0.0
	for _, p := range part {
		total += p
	}
	return total, nil
}

// SortInt64Ctx is SortInt64 with cooperative cancellation between radix
// passes (each pass is O(n)) and between the shards of the parallel
// passes. On cancellation the keys are left partially sorted and
// ctx.Err() is returned; a nil error means keys is fully sorted,
// bit-identically to the plain SortInt64.
func SortInt64Ctx(ctx context.Context, workers int, keys, scratch []int64) ([]int64, error) {
	if ctx == nil || ctx.Done() == nil {
		return SortInt64(workers, keys, scratch), nil
	}
	n := len(keys)
	if cap(scratch) < n {
		scratch = make([]int64, n)
	}
	scratch = scratch[:n]
	if err := ctx.Err(); err != nil {
		return scratch, err
	}
	if n <= insertionMax {
		insertionSortInt64(keys)
		return scratch, nil
	}
	w := Normalize(workers)
	if w <= 1 || n < radixSerialMin {
		return scratch, radixSortSerialCtx(ctx, keys, scratch)
	}
	return scratch, radixSortParallelCtx(ctx, w, keys, scratch)
}

// radixSortSerialCtx mirrors radixSortSerial with a context check
// before each digit pass.
func radixSortSerialCtx(ctx context.Context, keys, scratch []int64) error {
	var or uint64
	and := ^uint64(0)
	for _, k := range keys {
		or |= uint64(k)
		and &= uint64(k)
	}
	active := activeDigits(or, and)
	src, dst := keys, scratch
	var count [radixBuckets]int
	for d := 0; d < 8; d++ {
		if active&(1<<d) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			if &src[0] != &keys[0] {
				copy(keys, src)
			}
			return err
		}
		shift := 8 * uint(d)
		for i := range count {
			count[i] = 0
		}
		for _, k := range src {
			count[byte(uint64(k)>>shift)]++
		}
		total := 0
		for b := 0; b < radixBuckets; b++ {
			c := count[b]
			count[b] = total
			total += c
		}
		for _, k := range src {
			b := byte(uint64(k) >> shift)
			dst[count[b]] = k
			count[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
	return nil
}

// radixSortParallelCtx mirrors radixSortParallel; the histogram and
// scatter fan-outs of each pass check the context between shards via
// RunCtx, and a pass whose fan-out aborted stops the sort.
func radixSortParallelCtx(ctx context.Context, workers int, keys, scratch []int64) error {
	n := len(keys)
	blocks := Blocks(n, DefaultShards)
	S := len(blocks)
	ors := make([]uint64, S)
	ands := make([]uint64, S)
	if err := RunCtx(ctx, workers, S, func(s int) {
		var or uint64
		and := ^uint64(0)
		for _, k := range keys[blocks[s].Lo:blocks[s].Hi] {
			or |= uint64(k)
			and &= uint64(k)
		}
		ors[s], ands[s] = or, and
	}); err != nil {
		return err
	}
	var or uint64
	and := ^uint64(0)
	for s := 0; s < S; s++ {
		or |= ors[s]
		and &= ands[s]
	}
	active := activeDigits(or, and)

	src, dst := keys, scratch
	hist := make([]int, S*radixBuckets)
	restore := func() {
		if &src[0] != &keys[0] {
			copy(keys, src)
		}
	}
	for d := 0; d < 8; d++ {
		if active&(1<<d) == 0 {
			continue
		}
		shift := 8 * uint(d)
		if err := RunCtx(ctx, workers, S, func(s int) {
			h := hist[s*radixBuckets : (s+1)*radixBuckets]
			for i := range h {
				h[i] = 0
			}
			for _, k := range src[blocks[s].Lo:blocks[s].Hi] {
				h[byte(uint64(k)>>shift)]++
			}
		}); err != nil {
			restore()
			return err
		}
		total := 0
		for b := 0; b < radixBuckets; b++ {
			for s := 0; s < S; s++ {
				idx := s*radixBuckets + b
				c := hist[idx]
				hist[idx] = total
				total += c
			}
		}
		// The scatter must run to completion once started: an aborted
		// scatter would leave dst holding a mix of old and new keys. A
		// single context check gates the whole pass instead.
		Run(workers, S, func(s int) {
			h := hist[s*radixBuckets : (s+1)*radixBuckets]
			for _, k := range src[blocks[s].Lo:blocks[s].Hi] {
				b := byte(uint64(k) >> shift)
				dst[h[b]] = k
				h[b]++
			}
		})
		src, dst = dst, src
	}
	restore()
	return nil
}
