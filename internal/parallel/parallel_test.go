package parallel

import (
	"sync/atomic"
	"testing"

	"dpkron/internal/randx"
)

func TestNormalizeResolution(t *testing.T) {
	if Normalize(4) != 4 {
		t.Fatal("explicit worker count not honoured")
	}
	if Normalize(0) < 1 || Normalize(-3) < 1 {
		t.Fatal("default worker count must be >= 1")
	}
}

func TestBlocksCoverAndPartition(t *testing.T) {
	for _, tc := range []struct{ n, count int }{
		{10, 3}, {1, 1}, {5, 64}, {64, 64}, {1000, 7}, {3, 1},
	} {
		blocks := Blocks(tc.n, tc.count)
		prev := 0
		for _, b := range blocks {
			if b.Lo != prev || b.Hi <= b.Lo {
				t.Fatalf("Blocks(%d,%d): bad block %+v after %d", tc.n, tc.count, b, prev)
			}
			prev = b.Hi
		}
		if prev != tc.n {
			t.Fatalf("Blocks(%d,%d) cover ends at %d", tc.n, tc.count, prev)
		}
	}
	if Blocks(0, 4) != nil {
		t.Fatal("Blocks(0, _) should be nil")
	}
}

func TestPairBlocksBalanced(t *testing.T) {
	n, count := 4096, 16
	blocks := PairBlocks(n, count)
	prev := 0
	total := int64(n) * int64(n-1) / 2
	want := total / int64(count)
	for _, b := range blocks {
		if b.Lo != prev {
			t.Fatalf("gap before %+v", b)
		}
		prev = b.Hi
		pairs := int64(b.Hi)*int64(b.Hi-1)/2 - int64(b.Lo)*int64(b.Lo-1)/2
		// Balanced within 2x of the ideal share (boundaries are rows).
		if pairs > 2*want+int64(n) {
			t.Errorf("block %+v has %d pairs, ideal %d", b, pairs, want)
		}
	}
	if prev != n {
		t.Fatalf("cover ends at %d, want %d", prev, n)
	}
}

func TestPairBlocksTiny(t *testing.T) {
	for n := 1; n <= 5; n++ {
		blocks := PairBlocks(n, 64)
		last := 0
		for _, b := range blocks {
			if b.Lo != last {
				t.Fatalf("n=%d: gap at %+v", n, b)
			}
			last = b.Hi
		}
		if last != n {
			t.Fatalf("n=%d: cover ends at %d", n, last)
		}
	}
}

func TestRunVisitsEveryShardOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const shards = 37
		var hits [shards]atomic.Int32
		Run(workers, shards, func(s int) { hits[s].Add(1) })
		for s := range hits {
			if hits[s].Load() != 1 {
				t.Fatalf("workers=%d: shard %d visited %d times", workers, s, hits[s].Load())
			}
		}
	}
}

func TestRunIndexedVisitsEveryShardWithValidWorker(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		const shards = 29
		var hits [shards]atomic.Int32
		var badWorker atomic.Bool
		RunIndexed(workers, shards, func(worker, s int) {
			if worker < 0 || worker >= workers {
				badWorker.Store(true)
			}
			hits[s].Add(1)
		})
		if badWorker.Load() {
			t.Fatalf("workers=%d: worker index out of range", workers)
		}
		for s := range hits {
			if hits[s].Load() != 1 {
				t.Fatalf("workers=%d: shard %d visited %d times", workers, s, hits[s].Load())
			}
		}
	}
}

func TestSumInt64MatchesSerial(t *testing.T) {
	n := 1000
	want := int64(n) * int64(n-1) / 2 // sum of 0..n-1
	for _, workers := range []int{1, 4, 8} {
		got := SumInt64(workers, n, func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i)
			}
			return s
		})
		if got != want {
			t.Fatalf("workers=%d: sum = %d, want %d", workers, got, want)
		}
	}
}

func TestSumFloat64WorkerInvariant(t *testing.T) {
	n := 997
	f := func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += 1.0 / float64(i+1)
		}
		return s
	}
	base := SumFloat64(1, n, f)
	for _, workers := range []int{2, 4, 8, 32} {
		if got := SumFloat64(workers, n, f); got != base {
			t.Fatalf("workers=%d: %v != %v (must be bit-identical)", workers, got, base)
		}
	}
}

func TestMaxInt(t *testing.T) {
	vals := []int{3, 9, 2, 7, 9, 1}
	got := MaxInt(4, len(vals), func(lo, hi int) int {
		best := 0
		for i := lo; i < hi; i++ {
			if vals[i] > best {
				best = vals[i]
			}
		}
		return best
	})
	if got != 9 {
		t.Fatalf("MaxInt = %d, want 9", got)
	}
}

func TestStreamsIndependentOfConsumption(t *testing.T) {
	// Streams derived from equal-seeded parents are identical, and
	// consuming one stream does not affect another.
	a := Streams(randx.New(5), 4)
	b := Streams(randx.New(5), 4)
	a[0].Float64() // consume
	for i := 1; i < 4; i++ {
		if a[i].Float64() != b[i].Float64() {
			t.Fatal("streams are not independent of sibling consumption")
		}
	}
}
