package parallel

import (
	"sort"
	"testing"

	"dpkron/internal/randx"
)

// TestSortInt64MatchesReference drives SortInt64 against sort.Slice on
// inputs chosen to hit every code path: the insertion-sort tail, the
// serial radix path, the sharded radix path (explicit workers > 1 so it
// runs even on a single-CPU machine), duplicate-heavy streams, and
// degenerate digit patterns (all-equal keys, already-sorted and
// reverse-sorted input, keys confined to one byte).
func TestSortInt64MatchesReference(t *testing.T) {
	rng := randx.New(1)
	gen := func(n int, mode string) []int64 {
		keys := make([]int64, n)
		for i := range keys {
			switch mode {
			case "dup":
				keys[i] = int64(rng.IntN(7)) // heavy duplication
			case "byte":
				keys[i] = int64(rng.IntN(200)) // single active digit
			case "wide":
				keys[i] = int64(rng.Uint64() >> 1) // full non-negative range
			default:
				keys[i] = int64(rng.IntN(1<<20))<<32 | int64(rng.IntN(1<<20))
			}
		}
		switch mode {
		case "sorted":
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		case "reverse":
			sort.Slice(keys, func(i, j int) bool { return keys[i] > keys[j] })
		case "equal":
			for i := range keys {
				keys[i] = 42
			}
		}
		return keys
	}
	sizes := []int{0, 1, 2, insertionMax, insertionMax + 1, 1000, radixSerialMin - 1, radixSerialMin + 3, 60000}
	modes := []string{"pairs", "dup", "byte", "wide", "sorted", "reverse", "equal"}
	var scratch []int64
	for _, n := range sizes {
		for _, mode := range modes {
			for _, workers := range []int{1, 2, 8} {
				keys := gen(n, mode)
				want := append([]int64(nil), keys...)
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				scratch = SortInt64(workers, keys, scratch)
				for i := range keys {
					if keys[i] != want[i] {
						t.Fatalf("n=%d mode=%s workers=%d: keys[%d] = %d, want %d",
							n, mode, workers, i, keys[i], want[i])
					}
				}
			}
		}
	}
}

func TestSortInt64ScratchReuse(t *testing.T) {
	var scratch []int64
	for n := 1; n <= 4096; n *= 4 {
		rng := randx.New(uint64(n))
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(rng.IntN(1 << 30))
		}
		scratch = SortInt64(4, keys, scratch)
		if len(scratch) < n {
			t.Fatalf("scratch not grown to %d", n)
		}
		for i := 1; i < n; i++ {
			if keys[i] < keys[i-1] {
				t.Fatalf("n=%d: not sorted at %d", n, i)
			}
		}
	}
}

func TestMergeSortedInt64(t *testing.T) {
	rng := randx.New(7)
	for trial := 0; trial < 50; trial++ {
		na, nb := rng.IntN(40), rng.IntN(40)
		a := make([]int64, na)
		b := make([]int64, nb)
		for i := range a {
			a[i] = int64(rng.IntN(1000))
		}
		for i := range b {
			b[i] = int64(rng.IntN(1000))
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		want := append(append([]int64(nil), a...), b...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := MergeSortedInt64(a, b)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got[%d] = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}
