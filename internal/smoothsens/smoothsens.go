// Package smoothsens implements the Nissim–Raskhodnikova–Smith (STOC'07)
// smooth-sensitivity mechanism for the triangle count, used in steps 4–5
// of the paper's Algorithm 1 to release Δ̃ with (ε/2, δ)-differential
// privacy.
//
// For f(G) = number of triangles, the local sensitivity under edge
// toggles is LS(G) = max_{u≠v} |N(u) ∩ N(v)|: toggling edge {u, v}
// changes the count by exactly the number of common neighbours. The
// local sensitivity at edit distance s is A^(s)(G) = min(LS(G)+s, n−2),
// because one edge flip moves any common-neighbour count by at most one
// and a targeted flip achieves it, while n−2 is the ceiling. The
// β-smooth sensitivity is then SS_β(G) = max_{s≥0} e^{−βs}·A^(s)(G),
// which this package maximizes in closed form (and tests by exhaustive
// scan). Adding 2·SS_β/ε · Lap(1) noise with β = ε/(2·ln(2/δ)) gives
// (ε, δ)-DP (Theorem 4.8 of the paper).
package smoothsens

import (
	"fmt"
	"math"

	"dpkron/internal/graph"
	"dpkron/internal/randx"
	"dpkron/internal/stats"
)

// MaxCommonNeighbors returns max over node pairs u ≠ v of |N(u) ∩ N(v)|,
// the local sensitivity of the triangle count. It runs in O(Σ_w d_w²)
// time and O(n) memory by accumulating two-hop counts per source node.
func MaxCommonNeighbors(g *graph.Graph) int {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	count := make([]int32, n)
	var touched []int32
	best := 0
	for u := 0; u < n; u++ {
		touched = touched[:0]
		for _, w := range g.Neighbors(u) {
			for _, v := range g.Neighbors(int(w)) {
				if int(v) == u {
					continue
				}
				if count[v] == 0 {
					touched = append(touched, v)
				}
				count[v]++
			}
		}
		for _, v := range touched {
			// Each unordered pair is seen from both sides; restricting to
			// v > u halves the work without missing the max.
			if int(v) > u && int(count[v]) > best {
				best = int(count[v])
			}
			count[v] = 0
		}
	}
	return best
}

// LocalSensitivity returns LS_Δ(G) = MaxCommonNeighbors(g).
func LocalSensitivity(g *graph.Graph) float64 {
	return float64(MaxCommonNeighbors(g))
}

// SensitivityAtDistance returns A^(s)(G) = min(LS(G)+s, n−2), the
// maximum local sensitivity over graphs within edit distance s of g.
func SensitivityAtDistance(g *graph.Graph, s int) float64 {
	n := g.NumNodes()
	if n < 3 {
		return 0
	}
	cap64 := float64(n - 2)
	return math.Min(float64(MaxCommonNeighbors(g)+s), cap64)
}

// Smooth returns the β-smooth sensitivity of the triangle count at g.
// β must be positive.
func Smooth(g *graph.Graph, beta float64) float64 {
	if beta <= 0 || math.IsNaN(beta) {
		panic(fmt.Sprintf("smoothsens: beta must be positive, got %v", beta))
	}
	n := g.NumNodes()
	if n < 3 {
		return 0
	}
	return smoothFromLS(MaxCommonNeighbors(g), n, beta)
}

// smoothFromLS maximizes e^{−βs}·min(C+s, n−2) over integer s ≥ 0.
// The unconstrained maximizer of e^{−βs}(C+s) is s* = 1/β − C; the
// objective is unimodal in s, so checking s = 0, ⌊s*⌋, ⌈s*⌉ and the cap
// point suffices.
func smoothFromLS(C, n int, beta float64) float64 {
	capVal := float64(n - 2)
	obj := func(s float64) float64 {
		v := float64(C) + s
		if v > capVal {
			v = capVal
		}
		return math.Exp(-beta*s) * v
	}
	best := obj(0)
	sStar := 1/beta - float64(C)
	for _, s := range []float64{math.Floor(sStar), math.Ceil(sStar), capVal - float64(C)} {
		if s > 0 {
			if v := obj(s); v > best {
				best = v
			}
		}
	}
	return best
}

// BetaFor returns the largest admissible β for Theorem 4.8:
// β = ε / (2·ln(2/δ)). ε and δ must be positive with δ < 1.
func BetaFor(eps, delta float64) float64 {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("smoothsens: invalid (eps=%v, delta=%v)", eps, delta))
	}
	return eps / (2 * math.Log(2/delta))
}

// Result carries a private triangle count together with the calibration
// quantities, so experiments can report the magnitude of the added
// noise. Only Noisy is differentially private; Exact is the sensitive
// count, and SmoothSen/Scale depend on the sensitive graph and are not
// released by the mechanism (Beta is public, derived from ε and δ).
type Result struct {
	Noisy     float64 // Δ̃ = Δ + 2·SS_β/ε · Lap(1); safe to release
	Exact     int64   // the true count (sensitive; not for release)
	SmoothSen float64 // SS_β(G) (sensitive; not for release)
	Beta      float64 // β used (public)
	Scale     float64 // 2·SS_β/ε, the Laplace scale applied (sensitive)
}

// PrivateTriangles releases an (ε, δ)-differentially private triangle
// count of g via the smooth-sensitivity Laplace mechanism.
func PrivateTriangles(g *graph.Graph, eps, delta float64, rng *randx.Rand) Result {
	beta := BetaFor(eps, delta)
	ss := Smooth(g, beta)
	scale := 2 * ss / eps
	exact := stats.Triangles(g)
	return Result{
		Noisy:     float64(exact) + rng.Laplace(scale),
		Exact:     exact,
		SmoothSen: ss,
		Beta:      beta,
		Scale:     scale,
	}
}
