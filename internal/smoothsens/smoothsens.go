// Package smoothsens implements the Nissim–Raskhodnikova–Smith (STOC'07)
// smooth-sensitivity mechanism for the triangle count, used in steps 4–5
// of the paper's Algorithm 1 to release Δ̃ with (ε/2, δ)-differential
// privacy.
//
// For f(G) = number of triangles, the local sensitivity under edge
// toggles is LS(G) = max_{u≠v} |N(u) ∩ N(v)|: toggling edge {u, v}
// changes the count by exactly the number of common neighbours. The
// local sensitivity at edit distance s is A^(s)(G) = min(LS(G)+s, n−2),
// because one edge flip moves any common-neighbour count by at most one
// and a targeted flip achieves it, while n−2 is the ceiling. The
// β-smooth sensitivity is then SS_β(G) = max_{s≥0} e^{−βs}·A^(s)(G),
// which this package maximizes in closed form (and tests by exhaustive
// scan). Adding 2·SS_β/ε · Lap(1) noise with β = ε/(2·ln(2/δ)) gives
// (ε, δ)-DP (Theorem 4.8 of the paper).
package smoothsens

import (
	"fmt"
	"math"

	"dpkron/internal/accountant"
	"dpkron/internal/graph"
	"dpkron/internal/parallel"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
	"dpkron/internal/stats"
)

// MaxCommonNeighbors returns max over node pairs u ≠ v of |N(u) ∩ N(v)|,
// the local sensitivity of the triangle count. It runs in O(Σ_w d_w²)
// time and O(n) memory per shard by accumulating two-hop counts per
// source node, on all cores.
func MaxCommonNeighbors(g *graph.Graph) int { return MaxCommonNeighborsWorkers(g, 0) }

// MaxCommonNeighborsWorkers is MaxCommonNeighbors sharded over source
// nodes on up to workers goroutines (<= 0 selects
// runtime.GOMAXPROCS(0)). Each worker reuses one O(n) two-hop scratch
// array across the shards it processes; the integer max-reduction is
// identical for every worker count.
func MaxCommonNeighborsWorkers(g *graph.Graph, workers int) int {
	v, _ := MaxCommonNeighborsCtx(pipeline.New(nil, workers, nil), g)
	return v
}

// MaxCommonNeighborsCtx is MaxCommonNeighbors under a pipeline Run: the
// two-hop scan checks the context between source blocks. A run that is
// never cancelled computes the exact maximum; a cancelled run returns
// run.Err().
func MaxCommonNeighborsCtx(run *pipeline.Run, g *graph.Graph) (int, error) {
	n := g.NumNodes()
	if n < 2 {
		return 0, run.Err()
	}
	w := run.Workers()
	blocks := parallel.Blocks(n, parallel.DefaultShards)
	if w > len(blocks) {
		w = len(blocks)
	}
	type scratch struct {
		count   []int32
		touched []int32
		best    int
	}
	parts := make([]scratch, w)
	for i := range parts {
		parts[i] = scratch{count: make([]int32, n)}
	}
	err := parallel.RunIndexedCtx(run.Context(), w, len(blocks), func(worker, sh int) {
		sc := &parts[worker]
		count := sc.count
		for u := blocks[sh].Lo; u < blocks[sh].Hi; u++ {
			sc.touched = sc.touched[:0]
			for _, w := range g.Neighbors(u) {
				for _, v := range g.Neighbors(int(w)) {
					if int(v) == u {
						continue
					}
					if count[v] == 0 {
						sc.touched = append(sc.touched, v)
					}
					count[v]++
				}
			}
			for _, v := range sc.touched {
				// Each unordered pair is seen from both sides; restricting
				// to v > u halves the work without missing the max.
				if int(v) > u && int(count[v]) > sc.best {
					sc.best = int(count[v])
				}
				count[v] = 0
			}
		}
	})
	if err != nil {
		return 0, err
	}
	best := 0
	for _, sc := range parts {
		if sc.best > best {
			best = sc.best
		}
	}
	return best, nil
}

// LocalSensitivity returns LS_Δ(G) = MaxCommonNeighbors(g).
func LocalSensitivity(g *graph.Graph) float64 {
	return float64(MaxCommonNeighbors(g))
}

// SensitivityAtDistance returns A^(s)(G) = min(LS(G)+s, n−2), the
// maximum local sensitivity over graphs within edit distance s of g.
func SensitivityAtDistance(g *graph.Graph, s int) float64 {
	n := g.NumNodes()
	if n < 3 {
		return 0
	}
	cap64 := float64(n - 2)
	return math.Min(float64(MaxCommonNeighbors(g)+s), cap64)
}

// Smooth returns the β-smooth sensitivity of the triangle count at g.
// β must be positive.
func Smooth(g *graph.Graph, beta float64) float64 { return SmoothWorkers(g, beta, 0) }

// SmoothWorkers is Smooth with an explicit worker bound for the local
// sensitivity scan.
func SmoothWorkers(g *graph.Graph, beta float64, workers int) float64 {
	v, _ := SmoothCtx(pipeline.New(nil, workers, nil), g, beta)
	return v
}

// SmoothCtx is Smooth under a pipeline Run (see MaxCommonNeighborsCtx
// for the cancellation contract).
func SmoothCtx(run *pipeline.Run, g *graph.Graph, beta float64) (float64, error) {
	if beta <= 0 || math.IsNaN(beta) {
		panic(fmt.Sprintf("smoothsens: beta must be positive, got %v", beta))
	}
	n := g.NumNodes()
	if n < 3 {
		return 0, run.Err()
	}
	ls, err := MaxCommonNeighborsCtx(run, g)
	if err != nil {
		return 0, err
	}
	return smoothFromLS(ls, n, beta), nil
}

// smoothFromLS maximizes e^{−βs}·min(C+s, n−2) over integer s ≥ 0.
// The unconstrained maximizer of e^{−βs}(C+s) is s* = 1/β − C; the
// objective is unimodal in s, so checking s = 0, ⌊s*⌋, ⌈s*⌉ and the cap
// point suffices.
func smoothFromLS(C, n int, beta float64) float64 {
	capVal := float64(n - 2)
	obj := func(s float64) float64 {
		v := float64(C) + s
		if v > capVal {
			v = capVal
		}
		return math.Exp(-beta*s) * v
	}
	best := obj(0)
	sStar := 1/beta - float64(C)
	for _, s := range []float64{math.Floor(sStar), math.Ceil(sStar), capVal - float64(C)} {
		if s > 0 {
			if v := obj(s); v > best {
				best = v
			}
		}
	}
	return best
}

// BetaFor returns the largest admissible β for Theorem 4.8:
// β = ε / (2·ln(2/δ)). ε and δ must be positive with δ < 1.
func BetaFor(eps, delta float64) float64 {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("smoothsens: invalid (eps=%v, delta=%v)", eps, delta))
	}
	return eps / (2 * math.Log(2/delta))
}

// Result carries a private triangle count together with the calibration
// quantities, so experiments can report the magnitude of the added
// noise. Only Noisy is differentially private; Exact is the sensitive
// count, and SmoothSen/Scale depend on the sensitive graph and are not
// released by the mechanism (Beta is public, derived from ε and δ).
type Result struct {
	Noisy     float64 // Δ̃ = Δ + 2·SS_β/ε · Lap(1); safe to release
	Exact     int64   // the true count (sensitive; not for release)
	SmoothSen float64 // SS_β(G) (sensitive; not for release)
	Beta      float64 // β used (public)
	Scale     float64 // 2·SS_β/ε, the Laplace scale applied (sensitive)
}

// PrivateTriangles releases an (ε, δ)-differentially private triangle
// count of g via the smooth-sensitivity Laplace mechanism, on all cores.
func PrivateTriangles(g *graph.Graph, eps, delta float64, rng *randx.Rand) Result {
	return PrivateTrianglesWorkers(g, eps, delta, rng, 0)
}

// PrivateTrianglesWorkers is PrivateTriangles with an explicit bound on
// the goroutines used for the sensitivity scan and the exact count; the
// released value is identical for every worker count.
func PrivateTrianglesWorkers(g *graph.Graph, eps, delta float64, rng *randx.Rand, workers int) Result {
	res, _ := PrivateTrianglesCtx(pipeline.New(nil, workers, nil), g, eps, delta, rng)
	return res
}

// Query is the name under which the (ε, δ) Laplace release is charged
// to accountants; QueryPure names the pure-ε Cauchy release.
const (
	Query     = "triangles/smooth-laplace"
	QueryPure = "triangles/smooth-cauchy"
)

// PrivateTrianglesCtx is PrivateTriangles under a pipeline Run: the
// sensitivity scan and the exact count check the context between
// shards, and a "triangle-release" stage event pair is emitted. A run
// that is never cancelled consumes one Laplace draw from rng and
// releases the exact PrivateTrianglesWorkers value; a cancelled run
// returns run.Err() before any noise is drawn.
func PrivateTrianglesCtx(run *pipeline.Run, g *graph.Graph, eps, delta float64, rng *randx.Rand) (Result, error) {
	return PrivateTrianglesAccCtx(run, nil, g, eps, delta, rng) // nil accountant never refuses
}

// PrivateTrianglesAccCtx is PrivateTrianglesCtx drawing through the
// accountant's smooth-sensitivity Laplace mechanism: the (ε, δ) charge
// is recorded on acc (nil records nothing) after the sensitivity scan
// but before any noise is drawn, and a refused charge returns the
// error with no noise consumed from rng. For fixed seeds the released
// count is bit-identical to PrivateTrianglesCtx.
func PrivateTrianglesAccCtx(run *pipeline.Run, acc *accountant.Accountant, g *graph.Graph, eps, delta float64, rng *randx.Rand) (Result, error) {
	done := run.Stage("triangle-release")
	beta := BetaFor(eps, delta)
	ss, err := SmoothCtx(run, g, beta)
	if err != nil {
		return Result{}, err
	}
	exact, err := stats.TrianglesCtx(run, g)
	if err != nil {
		return Result{}, err
	}
	mech := accountant.SmoothLaplace{SmoothSens: ss, Beta: beta, Eps: eps, Delta: delta}
	if err := acc.Charge(Query, mech); err != nil {
		return Result{}, err
	}
	done()
	return Result{
		Noisy:     mech.Apply(float64(exact), rng),
		Exact:     exact,
		SmoothSen: ss,
		Beta:      beta,
		Scale:     mech.Scale(),
	}, nil
}

// BetaForPure returns the admissible β for the pure-ε Cauchy
// mechanism, ε/6: the standard Cauchy density ∝ 1/(1+z²) is
// (ε/6, ε/6)-admissible (Nissim et al.), so noise 6·SS_β/ε · Cauchy(1)
// at β = ε/6 gives (ε, 0)-DP. ε must be positive.
func BetaForPure(eps float64) float64 {
	if eps <= 0 || math.IsNaN(eps) {
		panic(fmt.Sprintf("smoothsens: invalid eps=%v", eps))
	}
	return eps / 6
}

// PrivateTrianglesPureCtx releases an (ε, 0)-differentially private
// triangle count via the smooth-sensitivity Cauchy mechanism — the
// pure-ε alternative to the paper's (ε, δ) Laplace release, with
// heavier-tailed noise as the price of dropping δ. The charge is
// recorded on acc (nil records nothing) before the single Cauchy draw.
func PrivateTrianglesPureCtx(run *pipeline.Run, acc *accountant.Accountant, g *graph.Graph, eps float64, rng *randx.Rand) (Result, error) {
	done := run.Stage("triangle-release")
	beta := BetaForPure(eps)
	ss, err := SmoothCtx(run, g, beta)
	if err != nil {
		return Result{}, err
	}
	exact, err := stats.TrianglesCtx(run, g)
	if err != nil {
		return Result{}, err
	}
	mech := accountant.SmoothCauchy{SmoothSens: ss, Beta: beta, Eps: eps}
	if err := acc.Charge(QueryPure, mech); err != nil {
		return Result{}, err
	}
	done()
	return Result{
		Noisy:     mech.Apply(float64(exact), rng),
		Exact:     exact,
		SmoothSen: ss,
		Beta:      beta,
		Scale:     mech.Scale(),
	}, nil
}
