package smoothsens

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dpkron/internal/accountant"
	"dpkron/internal/dp"
	"dpkron/internal/graph"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
)

func randomGraph(n int, p float64, seed uint64) *graph.Graph {
	r := rand.New(rand.NewPCG(seed, seed+5))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func bruteMaxCommon(g *graph.Graph) int {
	n := g.NumNodes()
	best := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			c := 0
			for w := 0; w < n; w++ {
				if w != u && w != v && g.HasEdge(u, w) && g.HasEdge(v, w) {
					c++
				}
			}
			if c > best {
				best = c
			}
		}
	}
	return best
}

func bruteSmooth(g *graph.Graph, beta float64) float64 {
	n := g.NumNodes()
	if n < 3 {
		return 0
	}
	C := bruteMaxCommon(g)
	best := 0.0
	// Past s = n the min() is capped and e^{-βs} only shrinks, but scan
	// generously to be safe against small β.
	limit := n + int(3/beta) + 10
	for s := 0; s <= limit; s++ {
		v := math.Min(float64(C+s), float64(n-2))
		if got := math.Exp(-beta*float64(s)) * v; got > best {
			best = got
		}
	}
	return best
}

func TestMaxCommonNeighborsKnown(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{graph.Complete(6), 4}, // any pair shares the other 4
		{graph.Star(8), 1},     // two leaves share the centre
		{graph.Cycle(5), 1},    // adjacent-at-distance-2 share 1
		{graph.Path(5), 1},
		{graph.Empty(5), 0},
		{graph.FromEdges(2, [][2]int{{0, 1}}), 0},
	}
	for i, c := range cases {
		if got := MaxCommonNeighbors(c.g); got != c.want {
			t.Errorf("case %d: MaxCommonNeighbors = %d, want %d", i, got, c.want)
		}
	}
}

func TestMaxCommonNeighborsVsBrute(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		g := randomGraph(22, 0.25, seed)
		if got, want := MaxCommonNeighbors(g), bruteMaxCommon(g); got != want {
			t.Fatalf("seed %d: got %d, brute %d", seed, got, want)
		}
	}
}

func TestSmoothVsExhaustiveScan(t *testing.T) {
	betas := []float64{0.01, 0.05, 0.2, 1, 3}
	for seed := uint64(0); seed < 6; seed++ {
		g := randomGraph(18, 0.2, seed)
		for _, beta := range betas {
			got := Smooth(g, beta)
			want := bruteSmooth(g, beta)
			if math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("seed %d beta %v: Smooth = %v, scan = %v", seed, beta, got, want)
			}
		}
	}
}

func TestSmoothAtLeastLocal(t *testing.T) {
	f := func(seed uint64, bRaw uint16) bool {
		g := randomGraph(16, 0.3, seed%500)
		beta := 0.01 + float64(bRaw)/65535*2
		return Smooth(g, beta) >= LocalSensitivity(g)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The defining smoothness property: SS(G) <= e^β · SS(G') for any edge
// neighbour G' of G.
func TestSmoothnessPropertyOnNeighbors(t *testing.T) {
	rng := randx.New(31)
	for trial := 0; trial < 80; trial++ {
		g := randomGraph(14, 0.3, uint64(trial))
		u, v := rng.IntN(14), rng.IntN(14)
		if u == v {
			continue
		}
		h := g.WithEdgeToggled(u, v)
		for _, beta := range []float64{0.05, 0.3, 1} {
			sg, sh := Smooth(g, beta), Smooth(h, beta)
			if sg > math.Exp(beta)*sh+1e-9 {
				t.Fatalf("trial %d beta %v: SS(G)=%v > e^b*SS(G')=%v", trial, beta, sg, math.Exp(beta)*sh)
			}
			if sh > math.Exp(beta)*sg+1e-9 {
				t.Fatalf("trial %d beta %v: SS(G')=%v > e^b*SS(G)=%v", trial, beta, sh, math.Exp(beta)*sg)
			}
		}
	}
}

func TestSensitivityAtDistance(t *testing.T) {
	g := graph.Star(10) // C = 1, n = 10
	if got := SensitivityAtDistance(g, 0); got != 1 {
		t.Fatalf("A^(0) = %v, want 1", got)
	}
	if got := SensitivityAtDistance(g, 3); got != 4 {
		t.Fatalf("A^(3) = %v, want 4", got)
	}
	if got := SensitivityAtDistance(g, 100); got != 8 { // capped at n-2
		t.Fatalf("A^(100) = %v, want 8", got)
	}
}

func TestLocalSensitivityIsTriangleChange(t *testing.T) {
	// Toggling any single edge changes the triangle count by at most
	// LS(G)... but LS is a max over *all* pairs, so compare against the
	// actual per-toggle change.
	for seed := uint64(0); seed < 10; seed++ {
		g := randomGraph(15, 0.3, seed)
		ls := int64(LocalSensitivity(g))
		base := triangles(g)
		for u := 0; u < 15; u++ {
			for v := u + 1; v < 15; v++ {
				h := g.WithEdgeToggled(u, v)
				diff := triangles(h) - base
				if diff < 0 {
					diff = -diff
				}
				if diff > ls {
					t.Fatalf("seed %d: toggling (%d,%d) changed triangles by %d > LS %d",
						seed, u, v, diff, ls)
				}
			}
		}
	}
}

func triangles(g *graph.Graph) int64 {
	n := g.NumNodes()
	var c int64
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			for w := v + 1; w < n; w++ {
				if g.HasEdge(u, v) && g.HasEdge(v, w) && g.HasEdge(u, w) {
					c++
				}
			}
		}
	}
	return c
}

func TestBetaFor(t *testing.T) {
	got := BetaFor(0.2, 0.01)
	want := 0.2 / (2 * math.Log(200))
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("BetaFor = %v, want %v", got, want)
	}
}

func TestBetaForPanics(t *testing.T) {
	for _, f := range []func(){
		func() { BetaFor(0, 0.1) },
		func() { BetaFor(1, 0) },
		func() { BetaFor(1, 1) },
		func() { Smooth(graph.Empty(5), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPrivateTrianglesAccurateAtHugeEps(t *testing.T) {
	g := randomGraph(40, 0.3, 7)
	res := PrivateTriangles(g, 1000, 0.01, randx.New(1))
	if math.Abs(res.Noisy-float64(res.Exact)) > 1 {
		t.Fatalf("noisy %v vs exact %d at huge epsilon", res.Noisy, res.Exact)
	}
	if res.Scale <= 0 || res.SmoothSen < LocalSensitivity(g) {
		t.Fatalf("calibration fields wrong: %+v", res)
	}
}

// TestPrivateTrianglesPure: the pure-ε Cauchy release uses β = ε/6,
// records an (ε, 0) charge (with β but never the realized smooth
// sensitivity), and approaches the exact count as ε grows.
func TestPrivateTrianglesPure(t *testing.T) {
	g := randomGraph(40, 0.3, 7)
	acc := accountant.New(nil)
	res, err := PrivateTrianglesPureCtx(pipeline.New(nil, 0, nil), acc, g, 1e6, randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Noisy-float64(res.Exact)) > 1 {
		t.Fatalf("noisy %v vs exact %d at huge epsilon", res.Noisy, res.Exact)
	}
	if res.Beta != BetaForPure(1e6) || res.Scale != 6*res.SmoothSen/1e6 {
		t.Fatalf("pure calibration wrong: %+v", res)
	}
	ch := acc.Charges()
	if len(ch) != 1 || ch[0].Query != QueryPure || ch[0].Delta != 0 || ch[0].Eps != 1e6 {
		t.Fatalf("pure charge = %+v", ch)
	}
	if ch[0].Beta != res.Beta || ch[0].Sensitivity != 0 {
		t.Fatalf("pure charge leaks or mislabels calibration: %+v", ch[0])
	}

	// A refused charge aborts before the Cauchy draw.
	limited := accountant.New(nil).WithLimit(dp.Budget{Eps: 0.1})
	rng := randx.New(2)
	if _, err := PrivateTrianglesPureCtx(pipeline.New(nil, 0, nil), limited, g, 0.5, rng); err == nil {
		t.Fatal("over-limit pure release succeeded")
	}
	probe := randx.New(2)
	if rng.Float64() != probe.Float64() {
		t.Fatal("refused release consumed randomness")
	}
}

func TestPrivateTrianglesUnbiased(t *testing.T) {
	g := randomGraph(30, 0.3, 9)
	const trials = 4000
	var sum float64
	var exact float64
	for i := 0; i < trials; i++ {
		res := PrivateTriangles(g, 0.5, 0.01, randx.New(uint64(i)))
		sum += res.Noisy
		exact = float64(res.Exact)
	}
	mean := sum / trials
	// Laplace noise has mean zero; scale here is 2*SS/eps, so allow a
	// few standard errors.
	res := PrivateTriangles(g, 0.5, 0.01, randx.New(0))
	se := res.Scale * math.Sqrt2 / math.Sqrt(trials)
	if math.Abs(mean-exact) > 5*se {
		t.Fatalf("mean %v vs exact %v (se %v)", mean, exact, se)
	}
}

func TestTinyGraphs(t *testing.T) {
	if got := Smooth(graph.Empty(2), 0.5); got != 0 {
		t.Fatalf("Smooth on 2 nodes = %v, want 0", got)
	}
	if got := SensitivityAtDistance(graph.Empty(1), 5); got != 0 {
		t.Fatalf("A^(s) on 1 node = %v, want 0", got)
	}
	res := PrivateTriangles(graph.Empty(2), 1, 0.1, randx.New(3))
	if res.Noisy != 0 || res.Exact != 0 {
		t.Fatalf("tiny graph result = %+v", res)
	}
}
