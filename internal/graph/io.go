package graph

import (
	"bufio"
	"fmt"
	"io"
)

// ReadEdgeList parses the SNAP edge-list text format: one whitespace-
// separated node pair per line, lines starting with '#' ignored. Node
// identifiers must be non-negative integers; the node count is
// max id + 1 unless a larger minNodes is given or a header comment
// declares a larger count ("# Nodes: 5242 ..." as in SNAP files, or
// "# ... 512 nodes, ..." as written by WriteEdgeList) — honouring the
// header preserves isolated nodes across round trips. The result is an
// undirected simple graph (loops dropped, duplicates merged), matching
// how the paper treats its datasets.
//
// The parse streams through an EdgeListScanner straight into the
// Builder's packed-pair representation (8 bytes per edge mention), so
// no intermediate edge slice is materialized.
func ReadEdgeList(r io.Reader, minNodes int) (*Graph, error) {
	return ReadEdgeListLimit(r, minNodes, 0)
}

// ReadEdgeListLimit is ReadEdgeList with a node-count cap (0 = none):
// input naming a node id at or beyond maxNodes — or declaring that
// many via a header — is rejected as soon as the offending line or
// header is seen, before the O(n) graph arrays are allocated. Servers
// use it so a tiny hostile upload naming node id 2e9 cannot force a
// multi-gigabyte allocation.
func ReadEdgeListLimit(r io.Reader, minNodes, maxNodes int) (*Graph, error) {
	sc := NewEdgeListScanner(r)
	var pairs []int64
	maxID := -1
	for sc.Scan() {
		u, v := sc.Edge()
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		if maxNodes > 0 && maxID >= maxNodes {
			return nil, fmt.Errorf("graph: input names node %d, exceeding the cap of %d nodes", maxID, maxNodes)
		}
		if hdr := sc.HeaderNodes(); maxNodes > 0 && hdr > maxNodes {
			return nil, fmt.Errorf("graph: input declares %d nodes, exceeding the cap of %d", hdr, maxNodes)
		}
		if u == v {
			continue // loops dropped, as Builder.AddEdge would
		}
		if u > v {
			u, v = v, u
		}
		pairs = append(pairs, int64(u)<<32|int64(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	n := maxID + 1
	if hdr := sc.HeaderNodes(); hdr > n {
		n = hdr
	}
	if minNodes > n {
		n = minNodes
	}
	if maxNodes > 0 && n > maxNodes {
		return nil, fmt.Errorf("graph: input declares %d nodes, exceeding the cap of %d", n, maxNodes)
	}
	if n > maxNodeID-1 {
		return nil, fmt.Errorf("graph: declared node count %d exceeds the %d limit", n, maxNodeID-1)
	}
	b := NewBuilderCap(n, len(pairs))
	b.AddPackedEdges(pairs)
	return b.Build(), nil
}

// WriteEdgeList writes the graph in SNAP edge-list format with a header
// comment, one "u v" line per undirected edge (u < v).
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# Undirected graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	var werr error
	g.ForEachEdge(func(u, v int) {
		if werr != nil {
			return
		}
		_, werr = fmt.Fprintf(bw, "%d\t%d\n", u, v)
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}
