package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses the SNAP edge-list text format: one whitespace-
// separated node pair per line, lines starting with '#' ignored. Node
// identifiers must be non-negative integers; the node count is
// max id + 1 unless a larger minNodes is given or a header comment
// declares a larger count ("# Nodes: 5242 ..." as in SNAP files, or
// "# ... 512 nodes, ..." as written by WriteEdgeList) — honouring the
// header preserves isolated nodes across round trips. The result is an
// undirected simple graph (loops dropped, duplicates merged), matching
// how the paper treats its datasets.
func ReadEdgeList(r io.Reader, minNodes int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var edges [][2]int
	maxID := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			if n, ok := headerNodeCount(text); ok && n > minNodes {
				minNodes = n
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want two fields, got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad node id %q: %v", line, fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad node id %q: %v", line, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", line)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, [2]int{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	n := maxID + 1
	if minNodes > n {
		n = minNodes
	}
	return FromEdges(n, edges), nil
}

// headerNodeCount extracts a node count from a comment line: either the
// SNAP convention "# Nodes: N ..." or this package's writer format
// "# ...: N nodes, ...".
func headerNodeCount(comment string) (int, bool) {
	fields := strings.Fields(strings.TrimPrefix(comment, "#"))
	for i, f := range fields {
		if strings.EqualFold(f, "nodes:") && i+1 < len(fields) {
			if n, err := strconv.Atoi(strings.TrimSuffix(fields[i+1], ",")); err == nil && n >= 0 {
				return n, true
			}
		}
		if strings.EqualFold(strings.TrimSuffix(f, ","), "nodes") && i > 0 {
			if n, err := strconv.Atoi(fields[i-1]); err == nil && n >= 0 {
				return n, true
			}
		}
	}
	return 0, false
}

// WriteEdgeList writes the graph in SNAP edge-list format with a header
// comment, one "u v" line per undirected edge (u < v).
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# Undirected graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	var werr error
	g.ForEachEdge(func(u, v int) {
		if werr != nil {
			return
		}
		_, werr = fmt.Fprintf(bw, "%d\t%d\n", u, v)
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}
