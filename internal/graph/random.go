package graph

import (
	"math"

	"dpkron/internal/randx"
)

// Gnp samples an Erdős–Rényi G(n, p) graph: every unordered pair is an
// edge independently with probability p. For small p it uses geometric
// skipping over the pair sequence (Batagelj–Brandes), giving expected
// O(n + m) time; p >= 1 yields the complete graph. G(n, p) is the model
// Nissim et al. analyze for the smooth sensitivity of triangle counts,
// and serves as the comparison substrate for the paper's §5 question of
// how SS_Δ grows in the SKG model.
func Gnp(n int, p float64, rng *randx.Rand) *Graph {
	if n < 0 {
		panic("graph: Gnp n must be non-negative")
	}
	b := NewBuilder(n)
	if p <= 0 || n < 2 {
		return b.Build()
	}
	if p >= 1 {
		return Complete(n)
	}
	// Iterate edges (v, w), w < v, skipping ahead by geometric gaps in
	// the linearized lower-triangle order.
	logq := math.Log(1 - p)
	v, w := 1, -1
	for v < n {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		w += 1 + int(math.Log(u)/logq)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			b.AddEdge(v, w)
		}
	}
	return b.Build()
}

// GnmRandom samples a uniform graph with exactly m distinct edges
// (the G(n, m) model) by rejection, which is efficient while
// m is well below the total pair count.
func GnmRandom(n, m int, rng *randx.Rand) *Graph {
	maxPairs := n * (n - 1) / 2
	if m > maxPairs {
		m = maxPairs
	}
	b := NewBuilder(n)
	seen := make(map[int64]struct{}, 2*m)
	for len(seen) < m {
		u := rng.IntN(n)
		v := rng.IntN(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)<<32 | int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}
	return b.Build()
}
