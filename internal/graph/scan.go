package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// EdgeListScanner is a streaming parser for the SNAP edge-list text
// format: one whitespace-separated node pair per line, lines starting
// with '#' ignored (but inspected for node-count headers). It yields
// one edge per Scan call without materializing the edge list, so
// importers can feed a Builder — or any other sink — directly from
// multi-gigabyte files.
//
//	sc := graph.NewEdgeListScanner(r)
//	for sc.Scan() {
//		u, v := sc.Edge()
//		...
//	}
//	if err := sc.Err(); err != nil { ... }
type EdgeListScanner struct {
	sc          *bufio.Scanner
	line        int
	u, v        int
	headerNodes int
	err         error
}

// NewEdgeListScanner returns a scanner reading edge-list text from r.
func NewEdgeListScanner(r io.Reader) *EdgeListScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	return &EdgeListScanner{sc: sc}
}

// Scan advances to the next edge, skipping blank lines and comments.
// It returns false at end of input or on the first malformed line;
// Err distinguishes the two.
func (s *EdgeListScanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for s.sc.Scan() {
		s.line++
		text := strings.TrimSpace(s.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			if n, ok := headerNodeCount(text); ok && n > s.headerNodes {
				s.headerNodes = n
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			s.err = fmt.Errorf("graph: line %d: want two fields, got %q", s.line, text)
			return false
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			s.err = fmt.Errorf("graph: line %d: bad node id %q: %v", s.line, fields[0], err)
			return false
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			s.err = fmt.Errorf("graph: line %d: bad node id %q: %v", s.line, fields[1], err)
			return false
		}
		if u < 0 || v < 0 {
			s.err = fmt.Errorf("graph: line %d: negative node id", s.line)
			return false
		}
		if u >= maxNodeID || v >= maxNodeID {
			s.err = fmt.Errorf("graph: line %d: node id exceeds the %d limit", s.line, maxNodeID-1)
			return false
		}
		s.u, s.v = u, v
		return true
	}
	if err := s.sc.Err(); err != nil {
		s.err = fmt.Errorf("graph: reading edge list: %w", err)
	}
	return false
}

// Edge returns the node pair of the last successful Scan.
func (s *EdgeListScanner) Edge() (u, v int) { return s.u, s.v }

// HeaderNodes returns the largest node count declared by a comment
// header seen so far: either the SNAP convention "# Nodes: N ..." or
// this package's writer format "# ...: N nodes, ...". Zero when no
// header has been seen. Honouring it preserves isolated nodes across
// round trips.
func (s *EdgeListScanner) HeaderNodes() int { return s.headerNodes }

// Err returns the first error encountered, or nil at clean EOF.
func (s *EdgeListScanner) Err() error { return s.err }

// maxNodeID is the exclusive node-id bound of the CSR representation
// (int32 adjacency) and of the packed int64 edge keys.
const maxNodeID = 1 << 31

// headerNodeCount extracts a node count from a comment line: either the
// SNAP convention "# Nodes: N ..." or this package's writer format
// "# ...: N nodes, ...".
func headerNodeCount(comment string) (int, bool) {
	fields := strings.Fields(strings.TrimPrefix(comment, "#"))
	for i, f := range fields {
		if strings.EqualFold(f, "nodes:") && i+1 < len(fields) {
			if n, err := strconv.Atoi(strings.TrimSuffix(fields[i+1], ",")); err == nil && n >= 0 {
				return n, true
			}
		}
		if strings.EqualFold(strings.TrimSuffix(f, ","), "nodes") && i > 0 {
			if n, err := strconv.Atoi(fields[i-1]); err == nil && n >= 0 {
				return n, true
			}
		}
	}
	return 0, false
}
