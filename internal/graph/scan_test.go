package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"testing"
)

// referenceReadEdgeList is the pre-PR-5 parser shape: accumulate a
// [][2]int, then FromEdges. The streaming ReadEdgeList must produce
// identical graphs on every input the old one accepted.
func referenceReadEdgeList(r io.Reader, minNodes int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var edges [][2]int
	maxID := -1
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			if n, ok := headerNodeCount(text); ok && n > minNodes {
				minNodes = n
			}
			continue
		}
		fields := strings.Fields(text)
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, err
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, [2]int{u, v})
	}
	n := maxID + 1
	if minNodes > n {
		n = minNodes
	}
	return FromEdges(n, edges), nil
}

// TestReadEdgeListMatchesReference: the streaming parser and the
// historical slice-based parser agree on the io_test fixture shapes —
// comments, headers, duplicates, loops, isolated nodes, random graphs.
func TestReadEdgeListMatchesReference(t *testing.T) {
	var big strings.Builder
	big.WriteString("# Nodes: 40 Edges: many\n")
	g := randomGraph(40, 0.3, 5)
	g.ForEachEdge(func(u, v int) { fmt.Fprintf(&big, "%d %d\n", u, v) })

	inputs := []string{
		"",
		"# only comments\n",
		"0\t1\n1 2\n\n2\t3\n",
		"# Nodes: 9 Edges: 1\n0 1\n",
		"# Undirected graph: 12 nodes, 1 edges\n0 1\n",
		"0 1\n0 1\n1 0\n3 3\n2 1\n", // duplicates both ways, a loop
		"5 5\n",                     // loop only: nodes without edges
		big.String(),
	}
	for _, minNodes := range []int{0, 10} {
		for i, in := range inputs {
			want, err := referenceReadEdgeList(strings.NewReader(in), minNodes)
			if err != nil {
				t.Fatalf("input %d: reference: %v", i, err)
			}
			got, err := ReadEdgeList(strings.NewReader(in), minNodes)
			if err != nil {
				t.Fatalf("input %d: streaming: %v", i, err)
			}
			if !want.Equal(got) {
				t.Errorf("input %d (minNodes=%d): streaming parse differs from reference (%d/%d nodes, %d/%d edges)",
					i, minNodes, got.NumNodes(), want.NumNodes(), got.NumEdges(), want.NumEdges())
			}
		}
	}
}

func TestEdgeScannerBasics(t *testing.T) {
	sc := NewEdgeListScanner(strings.NewReader("# Nodes: 7\n0 1\n# mid comment, 9 nodes, ok\n2 3 extra-ignored\n"))
	var got [][2]int
	for sc.Scan() {
		u, v := sc.Edge()
		got = append(got, [2]int{u, v})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != [2]int{0, 1} || got[1] != [2]int{2, 3} {
		t.Fatalf("edges = %v", got)
	}
	if sc.HeaderNodes() != 9 {
		t.Errorf("HeaderNodes = %d, want 9 (largest header wins)", sc.HeaderNodes())
	}
	// After exhaustion, Scan keeps returning false.
	if sc.Scan() {
		t.Error("Scan after EOF returned true")
	}
}

func TestEdgeScannerErrors(t *testing.T) {
	for _, in := range []string{
		"0\n",
		"a b\n",
		"0 x\n",
		"-1 2\n",
		"3 -7\n",
		"0 1\nboom\n",
		fmt.Sprintf("0 %d\n", int64(1)<<31), // id over the CSR limit
	} {
		sc := NewEdgeListScanner(strings.NewReader(in))
		for sc.Scan() {
		}
		if sc.Err() == nil {
			t.Errorf("input %q: expected error", in)
		}
		if sc.Scan() {
			t.Errorf("input %q: Scan returned true after error", in)
		}
	}
}
