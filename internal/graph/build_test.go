package graph

import (
	"sort"
	"testing"

	"dpkron/internal/randx"
)

// referenceBuild is the pre-radix Build algorithm (comparison sort +
// dedupe + two-pass CSR fill), kept verbatim as the oracle for the
// radix-sorted production path.
func referenceBuild(n int, mentions [][2]int) *Graph {
	pairs := make([]int64, 0, len(mentions))
	for _, e := range mentions {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		pairs = append(pairs, int64(u)<<32|int64(v))
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
	uniq := pairs[:0]
	var prev int64 = -1
	for _, p := range pairs {
		if p != prev {
			uniq = append(uniq, p)
			prev = p
		}
	}
	g := &Graph{off: make([]int32, n+1), adj: make([]int32, 2*len(uniq))}
	for _, p := range uniq {
		u, v := int32(p>>32), int32(p&0xffffffff)
		g.off[u+1]++
		g.off[v+1]++
	}
	for i := 1; i <= n; i++ {
		g.off[i] += g.off[i-1]
	}
	cursor := make([]int32, n)
	for _, p := range uniq {
		u, v := p>>32, p&0xffffffff
		g.adj[g.off[v]+cursor[v]] = int32(u)
		cursor[v]++
	}
	for _, p := range uniq {
		u, v := p>>32, p&0xffffffff
		g.adj[g.off[u]+cursor[u]] = int32(v)
		cursor[u]++
	}
	return g
}

// randomMultigraph draws m edge mentions (duplicates, loops, and skewed
// endpoints included) on n nodes; clustering some endpoints low keeps
// many rows empty, which exercises the empty-row paths.
func randomMultigraph(rng *randx.Rand, n, m int) [][2]int {
	out := make([][2]int, m)
	for i := range out {
		u := rng.IntN(n)
		v := rng.IntN(n)
		corner := n
		if corner > 3 {
			corner = 3
		}
		switch rng.IntN(4) {
		case 0: // duplicate-prone corner of the id space
			u, v = rng.IntN(corner), rng.IntN(corner)
		case 1: // occasional self-loop (Builder must drop it)
			v = u
		}
		out[i] = [2]int{u, v}
	}
	return out
}

// TestBuildMatchesReference asserts the radix-sorted Build is Equal to
// the comparison-sorted reference on random multigraph inputs,
// including duplicate mentions, self-loops, empty rows, and sizes on
// both sides of the sorter's serial/parallel threshold.
func TestBuildMatchesReference(t *testing.T) {
	rng := randx.New(3)
	cases := []struct{ n, m int }{
		{1, 0}, {2, 1}, {5, 0}, {8, 50}, {100, 10}, {100, 3000},
		{5000, 40000}, {1 << 15, 70000},
	}
	for _, c := range cases {
		mentions := randomMultigraph(rng, c.n, c.m)
		b := NewBuilder(c.n)
		for _, e := range mentions {
			b.AddEdge(e[0], e[1])
		}
		got := b.Build()
		want := referenceBuild(c.n, mentions)
		if !got.Equal(want) {
			t.Fatalf("n=%d m=%d: radix Build differs from reference", c.n, c.m)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("n=%d m=%d: %v", c.n, c.m, err)
		}
		// Rebuild with the retained mentions plus a few more: the reused
		// sort buffers must not leak state between Build calls.
		extra := randomMultigraph(rng, c.n, 37)
		for _, e := range extra {
			b.AddEdge(e[0], e[1])
		}
		got2 := b.Build()
		want2 := referenceBuild(c.n, append(mentions, extra...))
		if !got2.Equal(want2) {
			t.Fatalf("n=%d m=%d: rebuilt graph differs from reference", c.n, c.m)
		}
	}
}

func TestNewBuilderCapAndPackedEdges(t *testing.T) {
	b := NewBuilderCap(10, 64)
	if cap(b.pairs) < 64 {
		t.Fatalf("pairs capacity %d, want >= 64", cap(b.pairs))
	}
	keys := []int64{0<<32 | 3, 1<<32 | 2, 4<<32 | 9}
	b.AddPackedEdges(keys)
	b.AddEdge(3, 0) // duplicate via the scalar path
	g := b.Build()
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	for _, e := range [][2]int{{0, 3}, {1, 2}, {4, 9}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %v", e)
		}
	}
}

func TestAddPackedEdgesPanics(t *testing.T) {
	bad := [][]int64{
		{5<<32 | 5},  // loop
		{7<<32 | 2},  // unordered
		{1<<32 | 10}, // out of range
	}
	for i, keys := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			NewBuilder(10).AddPackedEdges(keys)
		}()
	}
}

// TestWithEdgeToggledMatchesRebuild asserts the O(m) CSR splice agrees
// with a full rebuild for random toggles on random graphs.
func TestWithEdgeToggledMatchesRebuild(t *testing.T) {
	rng := randx.New(11)
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.IntN(60)
		g := Gnp(n, 0.15, rng)
		for toggle := 0; toggle < 10; toggle++ {
			u := rng.IntN(n)
			v := rng.IntN(n)
			if u == v {
				continue
			}
			got := g.WithEdgeToggled(u, v)
			ref := NewBuilder(n)
			g.ForEachEdge(func(a, c int) {
				if (a == u && c == v) || (a == v && c == u) {
					return
				}
				ref.AddEdge(a, c)
			})
			if !g.HasEdge(u, v) {
				ref.AddEdge(u, v)
			}
			want := ref.Build()
			if !got.Equal(want) {
				t.Fatalf("trial %d: toggled (%d,%d) differs from rebuild", trial, u, v)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			g = got // walk a random toggle chain
		}
	}
}
