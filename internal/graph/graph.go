// Package graph implements the undirected simple graph store used by every
// other package in this module. Graphs are immutable after construction and
// held in compressed sparse row (CSR) form with sorted adjacency lists, so
// neighbour iteration is cache-friendly and edge membership is a binary
// search. Node identifiers are dense integers in [0, NumNodes).
//
// The package also provides the edge-list text format used by SNAP
// (whitespace-separated pairs, '#' comments), which the paper's datasets
// ship in.
package graph

import (
	"fmt"
	"slices"
	"sort"

	"dpkron/internal/parallel"
)

// Graph is an immutable undirected simple graph (no self-loops, no
// multi-edges) in CSR form. The zero value is an empty graph with no nodes.
type Graph struct {
	off []int32 // len n+1; adjacency of v is adj[off[v]:off[v+1]]
	adj []int32 // concatenated sorted neighbour lists; each edge appears twice
}

// CSR returns the graph's raw CSR arrays: off has length NumNodes()+1
// and adj holds the concatenated sorted adjacency (each edge twice).
// The slices alias internal storage and must not be modified.
func (g *Graph) CSR() (off, adj []int32) { return g.off, g.adj }

// FromCSR wraps externally owned CSR arrays as a Graph without
// copying. The caller vouches for the invariants Validate checks
// (monotone offsets, sorted symmetric adjacency, len(off) = n+1,
// len(adj) = off[n]); the mmap-backed dataset loader is the intended
// caller, keeping a stored graph's adjacency paged by the OS instead
// of decoded onto the heap. The arrays must stay immutable and alive
// for the life of the Graph.
func FromCSR(off, adj []int32) *Graph { return &Graph{off: off, adj: adj} }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int {
	if len(g.off) == 0 {
		return 0
	}
	return len(g.off) - 1
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int {
	return int(g.off[v+1] - g.off[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.off[v]:g.off[v+1]]
}

// HasEdge reports whether the undirected edge {u, v} is present.
// Self-queries (u == v) always return false.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	// Search from the lower-degree endpoint.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	nb := g.Neighbors(u)
	t := int32(v)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= t })
	return i < len(nb) && nb[i] == t
}

// Degrees returns the degree of every node.
func (g *Graph) Degrees() []int {
	n := g.NumNodes()
	d := make([]int, n)
	for v := 0; v < n; v++ {
		d[v] = g.Degree(v)
	}
	return d
}

// MaxDegree returns the largest degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	maxd := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(v); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// ForEachEdge calls fn once per undirected edge with u < v.
func (g *Graph) ForEachEdge(fn func(u, v int)) {
	for u := 0; u < g.NumNodes(); u++ {
		for _, w := range g.Neighbors(u) {
			if int(w) > u {
				fn(u, int(w))
			}
		}
	}
}

// Edges returns all undirected edges with u < v, in lexicographic order.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.NumEdges())
	g.ForEachEdge(func(u, v int) { out = append(out, [2]int{u, v}) })
	return out
}

// WithEdgeToggled returns a copy of g with edge {u, v} added if absent or
// removed if present. It is the edge-neighbourhood operation from
// Definition 4.1 of the paper and is used by the differential privacy
// tests. It panics if u == v or either endpoint is out of range.
func (g *Graph) WithEdgeToggled(u, v int) *Graph {
	n := g.NumNodes()
	if u == v || u < 0 || v < 0 || u >= n || v >= n {
		panic(fmt.Sprintf("graph: invalid edge toggle (%d, %d) on %d nodes", u, v, n))
	}
	// Splice the CSR arrays directly in O(n + m): only the rows of u and
	// v change, each by exactly one sorted neighbour. The smooth
	// sensitivity scan and the DP tests call this in tight loops, where
	// rebuilding through a Builder (sort + dedupe) was the dominant cost.
	had := g.HasEdge(u, v)
	delta := 1
	if had {
		delta = -1
	}
	h := &Graph{
		off: make([]int32, n+1),
		adj: make([]int32, len(g.adj)+2*delta),
	}
	pos := int32(0)
	for w := 0; w < n; w++ {
		h.off[w] = pos
		nb := g.Neighbors(w)
		switch w {
		case u:
			pos = spliceRow(h.adj, pos, nb, int32(v), had)
		case v:
			pos = spliceRow(h.adj, pos, nb, int32(u), had)
		default:
			copy(h.adj[pos:], nb)
			pos += int32(len(nb))
		}
	}
	h.off[n] = pos
	return h
}

// spliceRow copies the sorted row nb into dst at pos with the neighbour
// t removed (remove = true) or inserted at its sorted position, and
// returns the new cursor.
func spliceRow(dst []int32, pos int32, nb []int32, t int32, remove bool) int32 {
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= t })
	copy(dst[pos:], nb[:i])
	pos += int32(i)
	if remove {
		i++ // nb[i] == t: skip it
	} else {
		dst[pos] = t
		pos++
	}
	copy(dst[pos:], nb[i:])
	return pos + int32(len(nb)-i)
}

// Equal reports whether two graphs have identical node and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.NumNodes() != h.NumNodes() || len(g.adj) != len(h.adj) {
		return false
	}
	for i := range g.off {
		if g.off[i] != h.off[i] {
			return false
		}
	}
	for i := range g.adj {
		if g.adj[i] != h.adj[i] {
			return false
		}
	}
	return true
}

// Validate checks the CSR invariants: sorted adjacency, no loops, no
// duplicate neighbours, and symmetry. It is O(m log m) and intended for
// tests and after deserialization.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	if len(g.off) > 0 && g.off[0] != 0 {
		return fmt.Errorf("graph: off[0] = %d, want 0", g.off[0])
	}
	for v := 0; v < n; v++ {
		if g.off[v+1] < g.off[v] {
			return fmt.Errorf("graph: offsets not monotone at node %d", v)
		}
		nb := g.Neighbors(v)
		for i, w := range nb {
			if int(w) == v {
				return fmt.Errorf("graph: self-loop at node %d", v)
			}
			if w < 0 || int(w) >= n {
				return fmt.Errorf("graph: neighbour %d of node %d out of range", w, v)
			}
			if i > 0 && nb[i-1] >= w {
				return fmt.Errorf("graph: adjacency of node %d not strictly sorted", v)
			}
			if !g.HasEdge(int(w), v) {
				return fmt.Errorf("graph: edge (%d,%d) present but (%d,%d) missing", v, w, w, v)
			}
		}
	}
	return nil
}

// Builder accumulates edges and produces an immutable Graph. Self-loops
// are dropped and duplicate edges are merged, matching the paper's
// convention that realized graphs are simple and undirected.
type Builder struct {
	n     int
	pairs []int64 // packed (min<<32 | max) per undirected edge mention
	// buf and scratch are reusable sort buffers so repeated Build calls
	// (the experiment sweeps build thousands of sampled graphs) stop
	// re-allocating; they hold no state between calls.
	buf, scratch []int64
}

// NewBuilder returns a Builder for a graph on n nodes. It panics if n < 0
// or n exceeds the 2^31-1 node-id limit of the CSR representation.
func NewBuilder(n int) *Builder {
	if n < 0 || n > 1<<31-1 {
		panic(fmt.Sprintf("graph: invalid node count %d", n))
	}
	return &Builder{n: n}
}

// NewBuilderCap is NewBuilder with the edge-mention slice pre-sized to
// edgeHint, avoiding append-regrowth churn when the caller knows the
// sample size in advance (samplers, FromEdges, file loaders).
func NewBuilderCap(n, edgeHint int) *Builder {
	b := NewBuilder(n)
	if edgeHint > 0 {
		b.pairs = make([]int64, 0, edgeHint)
	}
	return b
}

// AddEdge records the undirected edge {u, v}. Loops are ignored.
// It panics if either endpoint is out of range.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d, %d) out of range [0, %d)", u, v, b.n))
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.pairs = append(b.pairs, int64(u)<<32|int64(v))
}

// AddPackedEdges records edge mentions already packed in the Builder's
// key format, int64(u)<<32|int64(v) with u < v. It is the bulk path the
// samplers use once they hold deduplicated key slices. It panics if any
// key is malformed or out of range.
func (b *Builder) AddPackedEdges(keys []int64) {
	for _, key := range keys {
		u, v := int(key>>32), int(key&0xffffffff)
		if u < 0 || u >= v || v >= b.n {
			panic(fmt.Sprintf("graph: packed edge (%d, %d) invalid on %d nodes", u, v, b.n))
		}
	}
	b.pairs = append(b.pairs, keys...)
}

// NumPending returns the number of edge mentions recorded so far
// (duplicates included).
func (b *Builder) NumPending() int { return len(b.pairs) }

// Build produces the Graph on the calling goroutine; it is
// BuildWorkers(1). The Builder may be reused afterwards; its
// accumulated edges are retained, and the sort buffers are kept so
// repeated Build calls allocate only the returned CSR arrays.
func (b *Builder) Build() *Graph { return b.BuildWorkers(1) }

// BuildWorkers is Build with the sort sharded over up to workers
// goroutines (<= 0 selects runtime.GOMAXPROCS(0)); the samplers pass
// their Workers option through so nested parallelism stays under the
// caller's control. The resulting graph is identical for every worker
// count.
//
// The edge mentions are ordered with an LSD radix sort on the packed
// int64 pair keys (parallel.SortInt64) instead of a comparison sort —
// already-sorted input, which the bulk sampler path produces, is
// detected and skipped — and the resulting graph is identical to what a
// comparison-sorted Build produced.
func (b *Builder) BuildWorkers(workers int) *Graph {
	if cap(b.buf) < len(b.pairs) {
		b.buf = make([]int64, len(b.pairs))
	}
	pairs := b.buf[:len(b.pairs)]
	copy(pairs, b.pairs)
	if !slices.IsSorted(pairs) {
		b.scratch = parallel.SortInt64(workers, pairs, b.scratch)
	}
	// Dedupe.
	uniq := pairs[:0]
	var prev int64 = -1
	for _, p := range pairs {
		if p != prev {
			uniq = append(uniq, p)
			prev = p
		}
	}
	g := &Graph{
		off: make([]int32, b.n+1),
		adj: make([]int32, 2*len(uniq)),
	}
	// Count degrees.
	for _, p := range uniq {
		u, v := int32(p>>32), int32(p&0xffffffff)
		g.off[u+1]++
		g.off[v+1]++
	}
	for i := 1; i <= b.n; i++ {
		g.off[i] += g.off[i-1]
	}
	// Fill. uniq is sorted by (u, v), so per-row fills are in increasing
	// order for the u side; the v side also ends up sorted because for a
	// fixed v the u values arrive in increasing order and are placed
	// sequentially—but interleaving with the u side can break ordering,
	// so fill in two passes to keep each row sorted without a final sort.
	cursor := make([]int32, b.n)
	for _, p := range uniq { // pass 1: neighbours smaller than the row node
		u, v := p>>32, p&0xffffffff // u < v: u gains v later; v gains u now
		g.adj[g.off[v]+cursor[v]] = int32(u)
		cursor[v]++
	}
	for _, p := range uniq { // pass 2: neighbours larger than the row node
		u, v := p>>32, p&0xffffffff
		g.adj[g.off[u]+cursor[u]] = int32(v)
		cursor[u]++
	}
	return g
}

// Absorb appends every edge mention recorded in o into b, leaving o
// unchanged. It is how per-shard builders produced by parallel samplers
// are merged before a single Build; duplicates across shards are merged
// by Build as usual. It panics if the node counts differ.
func (b *Builder) Absorb(o *Builder) {
	if o.n != b.n {
		panic(fmt.Sprintf("graph: Absorb node count mismatch: %d != %d", o.n, b.n))
	}
	b.pairs = append(b.pairs, o.pairs...)
}

// FromEdges builds a graph on n nodes from an edge slice. Loops are
// dropped and duplicates merged.
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilderCap(n, len(edges))
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilderCap(n, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Empty returns the edgeless graph on n nodes.
func Empty(n int) *Graph { return NewBuilder(n).Build() }

// Path returns the path graph 0-1-...-(n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.Build()
}

// Cycle returns the cycle graph on n >= 3 nodes.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle requires n >= 3")
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	return b.Build()
}

// Star returns the star graph with centre 0 and n-1 leaves.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Build()
}
