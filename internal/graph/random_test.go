package graph

import (
	"math"
	"testing"

	"dpkron/internal/randx"
)

func TestGnpEdgeCount(t *testing.T) {
	rng := randx.New(1)
	const n = 200
	const p = 0.05
	const trials = 50
	var sum float64
	for i := 0; i < trials; i++ {
		g := Gnp(n, p, rng)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		sum += float64(g.NumEdges())
	}
	mean := sum / trials
	want := p * float64(n*(n-1)/2)
	// sd per trial ≈ sqrt(E(1-p)) ≈ 30.7, se of mean ≈ 4.3.
	if math.Abs(mean-want) > 15 {
		t.Fatalf("mean edges = %v, want ~%v", mean, want)
	}
}

func TestGnpExtremes(t *testing.T) {
	rng := randx.New(2)
	if g := Gnp(10, 0, rng); g.NumEdges() != 0 {
		t.Fatal("p=0 should be edgeless")
	}
	if g := Gnp(10, 1, rng); g.NumEdges() != 45 {
		t.Fatalf("p=1 should be complete, got %d edges", g.NumEdges())
	}
	if g := Gnp(0, 0.5, rng); g.NumNodes() != 0 {
		t.Fatal("n=0")
	}
	if g := Gnp(1, 0.5, rng); g.NumEdges() != 0 {
		t.Fatal("n=1 must have no edges")
	}
}

func TestGnpDegreeDistribution(t *testing.T) {
	// Mean degree should be ~p(n-1).
	rng := randx.New(3)
	g := Gnp(2000, 0.01, rng)
	sum := 0
	for _, d := range g.Degrees() {
		sum += d
	}
	mean := float64(sum) / 2000
	want := 0.01 * 1999.0
	if math.Abs(mean-want) > 1.5 {
		t.Fatalf("mean degree = %v, want ~%v", mean, want)
	}
}

func TestGnpUniformPairCoverage(t *testing.T) {
	// Every pair should be hit with roughly equal frequency: check a
	// few specific pairs over many samples on a tiny graph.
	rng := randx.New(4)
	const trials = 4000
	count01, count34 := 0, 0
	for i := 0; i < trials; i++ {
		g := Gnp(5, 0.3, rng)
		if g.HasEdge(0, 1) {
			count01++
		}
		if g.HasEdge(3, 4) {
			count34++
		}
	}
	for _, c := range []int{count01, count34} {
		p := float64(c) / trials
		if math.Abs(p-0.3) > 0.025 {
			t.Fatalf("pair rate = %v, want 0.3 (counts %d, %d)", p, count01, count34)
		}
	}
}

func TestGnmExactCount(t *testing.T) {
	rng := randx.New(5)
	g := GnmRandom(50, 100, rng)
	if g.NumEdges() != 100 {
		t.Fatalf("edges = %d, want 100", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGnmCapsAtComplete(t *testing.T) {
	rng := randx.New(6)
	g := GnmRandom(6, 1000, rng)
	if g.NumEdges() != 15 {
		t.Fatalf("edges = %d, want 15 (complete)", g.NumEdges())
	}
}
