package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := Empty(5)
	if g.NumNodes() != 5 || g.NumEdges() != 0 {
		t.Fatalf("Empty(5): nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Fatalf("degree(%d) = %d, want 0", v, g.Degree(v))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroValue(t *testing.T) {
	var g Graph
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("zero-value Graph is not empty")
	}
}

func TestCompleteGraph(t *testing.T) {
	g := Complete(6)
	if g.NumEdges() != 15 {
		t.Fatalf("K6 edges = %d, want 15", g.NumEdges())
	}
	for u := 0; u < 6; u++ {
		if g.Degree(u) != 5 {
			t.Fatalf("K6 degree(%d) = %d", u, g.Degree(u))
		}
		for v := 0; v < 6; v++ {
			want := u != v
			if g.HasEdge(u, v) != want {
				t.Fatalf("K6 HasEdge(%d,%d) = %v", u, v, !want)
			}
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoopsAndDuplicatesDropped(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 0}, {0, 1}, {2, 2}, {3, 2}})
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 (loop and dups dropped)", g.NumEdges())
	}
	if g.HasEdge(2, 2) {
		t.Fatal("self-loop present")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Fatal("expected edges missing")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := FromEdges(6, [][2]int{{3, 5}, {3, 0}, {3, 4}, {3, 1}})
	nb := g.Neighbors(3)
	want := []int32{0, 1, 4, 5}
	if len(nb) != len(want) {
		t.Fatalf("neighbours = %v", nb)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("neighbours = %v, want %v", nb, want)
		}
	}
}

func TestDegreeSumTwiceEdges(t *testing.T) {
	g := randomGraph(50, 0.2, 1)
	sum := 0
	for _, d := range g.Degrees() {
		sum += d
	}
	if sum != 2*g.NumEdges() {
		t.Fatalf("degree sum %d != 2*edges %d", sum, 2*g.NumEdges())
	}
}

func TestForEachEdgeOrdering(t *testing.T) {
	g := randomGraph(30, 0.3, 2)
	var prev [2]int = [2]int{-1, -1}
	count := 0
	g.ForEachEdge(func(u, v int) {
		if u >= v {
			t.Fatalf("edge (%d,%d) not ordered", u, v)
		}
		if u < prev[0] || (u == prev[0] && v <= prev[1]) {
			t.Fatalf("edges not lexicographic: %v then (%d,%d)", prev, u, v)
		}
		prev = [2]int{u, v}
		count++
	})
	if count != g.NumEdges() {
		t.Fatalf("ForEachEdge visited %d, want %d", count, g.NumEdges())
	}
}

func TestWithEdgeToggled(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}})
	added := g.WithEdgeToggled(2, 3)
	if !added.HasEdge(2, 3) || added.NumEdges() != 3 {
		t.Fatal("toggle-add failed")
	}
	removed := g.WithEdgeToggled(0, 1)
	if removed.HasEdge(0, 1) || removed.NumEdges() != 1 {
		t.Fatal("toggle-remove failed")
	}
	// Toggling twice restores the original.
	back := added.WithEdgeToggled(2, 3)
	if !back.Equal(g) {
		t.Fatal("double toggle did not restore graph")
	}
}

func TestWithEdgeToggledPanics(t *testing.T) {
	g := Empty(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on loop toggle")
		}
	}()
	g.WithEdgeToggled(1, 1)
}

func TestEqual(t *testing.T) {
	a := FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	b := FromEdges(4, [][2]int{{2, 3}, {0, 1}})
	c := FromEdges(4, [][2]int{{0, 1}, {1, 3}})
	if !a.Equal(b) {
		t.Fatal("equal graphs reported unequal")
	}
	if a.Equal(c) {
		t.Fatal("unequal graphs reported equal")
	}
}

func TestStarPathCycle(t *testing.T) {
	if g := Star(5); g.NumEdges() != 4 || g.Degree(0) != 4 {
		t.Fatal("Star(5) malformed")
	}
	if g := Path(5); g.NumEdges() != 4 || g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Fatal("Path(5) malformed")
	}
	if g := Cycle(5); g.NumEdges() != 5 || g.Degree(0) != 2 {
		t.Fatal("Cycle(5) malformed")
	}
}

func TestBuilderReuse(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g1 := b.Build()
	b.AddEdge(1, 2)
	g2 := b.Build()
	if g1.NumEdges() != 1 {
		t.Fatal("first Build mutated by later AddEdge")
	}
	if g2.NumEdges() != 2 {
		t.Fatal("builder did not retain edges across Build")
	}
}

// randomGraph builds a G(n, p) Erdos-Renyi graph with a fixed seed.
func randomGraph(n int, p float64, seed uint64) *Graph {
	r := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func TestValidateRandomGraphs(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g := randomGraph(40, 0.15, seed)
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestQuickCSRInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 24
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(int(raw[i])%n, int(raw[i+1])%n)
		}
		g := b.Build()
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickHasEdgeMatchesEdgeSet(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 16
		set := map[[2]int]bool{}
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			u, v := int(raw[i])%n, int(raw[i+1])%n
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			set[[2]int{u, v}] = true
			b.AddEdge(u, v)
		}
		g := b.Build()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				a, c := u, v
				if a > c {
					a, c = c, a
				}
				if g.HasEdge(u, v) != (u != v && set[[2]int{a, c}]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
