package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# Comment line
# Nodes: 4 Edges: 3
0	1
1 2

2	3
`
	g, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatalf("nodes=%d edges=%d, want 4/3", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(1, 2) {
		t.Fatal("edge (1,2) missing")
	}
}

func TestReadEdgeListMinNodes(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 10 {
		t.Fatalf("nodes = %d, want 10", g.NumNodes())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",    // one field
		"a b\n",  // non-integer
		"0 x\n",  // non-integer second
		"-1 2\n", // negative
		"3 -7\n", // negative second
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), 0); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraph(25, 0.25, 3)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Fatal("round trip changed the graph")
	}
}

func TestReadEmptyInput(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# only comments\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty input should give empty graph")
	}
}

func TestReadEdgeListHonorsSnapHeader(t *testing.T) {
	in := "# Nodes: 9 Edges: 1\n0 1\n"
	g, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 9 {
		t.Fatalf("nodes = %d, want 9 from SNAP header", g.NumNodes())
	}
}

func TestReadEdgeListHonorsWriterHeader(t *testing.T) {
	in := "# Undirected graph: 12 nodes, 1 edges\n0 1\n"
	g, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 12 {
		t.Fatalf("nodes = %d, want 12 from writer header", g.NumNodes())
	}
}

func TestRoundTripPreservesIsolatedNodes(t *testing.T) {
	b := NewBuilder(20) // nodes 10..19 isolated
	b.AddEdge(0, 1)
	b.AddEdge(2, 9)
	g := b.Build()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 20 {
		t.Fatalf("round trip lost isolated nodes: %d, want 20", back.NumNodes())
	}
	if !g.Equal(back) {
		t.Fatal("round trip changed the graph")
	}
}

func TestHeaderNodeCountIgnoresGarbage(t *testing.T) {
	for _, c := range []string{"# hello world", "# Nodes: x", "# nodes", "#"} {
		if n, ok := headerNodeCount(c); ok {
			t.Errorf("%q parsed as %d", c, n)
		}
	}
}
