// Package core implements the paper's primary contribution, Algorithm 1:
// a differentially private estimator Θ̃ of the stochastic Kronecker graph
// initiator matrix.
//
// Given a sensitive graph G and a privacy budget (ε, δ), the algorithm
//
//  1. computes the degree vector of G,
//  2. releases an (ε/2, 0)-DP sorted degree sequence d̃ via the Hay et
//     al. mechanism (Laplace noise + constrained inference),
//  3. derives the private feature counts Ẽ, H̃, T̃ from d̃ (Fact 4.6),
//  4. computes the β-smooth sensitivity of the triangle count, and
//  5. releases an (ε/2, δ)-DP triangle count Δ̃ (Nissim et al.),
//  6. feeds {Ẽ, H̃, T̃, Δ̃} to the Gleich–Owen moment objective
//     (Equation 2) to obtain Θ̃.
//
// By sequential composition (Theorem 4.9) the released estimator is
// (ε, δ)-differentially private (Corollary 4.11); step 6 is
// post-processing and costs nothing. Sampling the SKG defined by Θ̃
// yields synthetic graphs that mimic the statistics of G.
package core

import (
	"fmt"

	"dpkron/internal/accountant"
	"dpkron/internal/degseq"
	"dpkron/internal/dp"
	"dpkron/internal/graph"
	"dpkron/internal/kronmom"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
	"dpkron/internal/smoothsens"
	"dpkron/internal/stats"
)

// Options configures the private estimator.
type Options struct {
	// Eps is the total ε budget, split evenly between the degree
	// sequence and the triangle count. Required, > 0.
	Eps float64
	// Delta is the δ of the triangle mechanism; the overall guarantee is
	// (Eps, Delta). Required, in (0, 1).
	Delta float64
	// K is the Kronecker power; 0 infers the smallest k with 2^k >= n.
	// The node count is public under edge differential privacy.
	K int
	// Objective is the Equation 2 configuration (default: DistSq/NormF²
	// over all four features, as in the paper's experiments).
	Objective kronmom.Objective
	// RandomStarts and GridPoints tune the moment optimizer
	// (see kronmom.Options).
	RandomStarts int
	GridPoints   int
	// KeepNonpositiveDelta disables the robustness rule that drops the
	// triangle feature from the moment objective when the released Δ̃ is
	// non-positive. A non-positive Δ̃ is pure noise (the true count is
	// non-negative), and the NormF² weighting of Equation 2 then forces
	// the fit toward degenerate zero-triangle models; dropping the
	// feature is post-processing on released values and costs no
	// privacy. Set this to reproduce the paper's Algorithm 1 verbatim.
	KeepNonpositiveDelta bool
	// Rng is required; all noise and optimizer randomness flows from it.
	Rng *randx.Rand
	// Accountant, when set, is charged for every mechanism of this run
	// before its noise is drawn; a refused charge (the accountant's
	// budget limit would be exceeded) aborts the estimate with that
	// error and no further noise is consumed. The accountant may be
	// shared across *sequential* releases — the Result's receipt then
	// covers only this run's charges. Concurrent runs must each use
	// their own accountant (their charges would interleave into one
	// receipt otherwise); enforce one cumulative budget across
	// concurrent fits with a shared accountant.Ledger instead, as the
	// server does. Nil runs under a fresh unlimited sequential
	// accountant; either way the receipt lands on the Result, and
	// charging never perturbs the rng stream (fixed-seed outputs are
	// bit-identical with or without an accountant).
	Accountant *accountant.Accountant
	// Workers bounds the goroutines used by the pipeline's parallel
	// stages (feature counting, the smooth-sensitivity scan, and the
	// moment optimizer); <= 0 selects runtime.GOMAXPROCS(0). The
	// released estimate is identical for every worker count. EstimateCtx
	// ignores this field: the pipeline Run's budget is authoritative.
	Workers int
}

// Result is the outcome of the private estimation.
type Result struct {
	// Init is the released private initiator Θ̃ (canonical, A >= C).
	Init skg.Initiator
	// K is the Kronecker power used.
	K int
	// Features are the private feature counts fed to the moment
	// objective. Safe to release.
	Features stats.Features
	// DegreeSeq is the released private sorted degree sequence. Safe to
	// release.
	DegreeSeq []float64
	// Triangles carries the smooth-sensitivity calibration details.
	// Only its Noisy field is differentially private: Exact is the
	// sensitive true count, and SmoothSen/Scale are data-dependent
	// calibration quantities that the mechanism does not release. All
	// three are retained for experiment reporting only.
	Triangles smoothsens.Result
	// DeltaDropped records that the released Δ̃ was non-positive and the
	// triangle feature was excluded from the moment objective (see
	// Options.KeepNonpositiveDelta).
	DeltaDropped bool
	// Moment is the optimizer diagnostic for the final fit.
	Moment kronmom.Estimate
	// Privacy is the composed (ε, δ) guarantee of everything released.
	Privacy dp.Budget
	// Charges itemizes the budget per mechanism.
	Charges []accountant.Charge
	// Receipt is the machine-readable spend record of this run: the
	// charges above plus their composed total under the accountant's
	// policy. Safe to release (data-dependent calibration quantities
	// never appear in receipts).
	Receipt accountant.Receipt
}

// PlannedReceipt returns the exact receipt a successful Estimate run
// with total budget (eps, delta) will produce, without running
// anything: Algorithm 1's charge schedule is data-independent — ε/2 to
// the degree sequence, (ε/2, δ) to the triangle count — so a ledger
// can be debited at admission time, before any sensitive data is
// touched. That admission-time debit is what keeps concurrent fits
// from jointly overdrawing a shared ledger.
func PlannedReceipt(eps, delta float64) accountant.Receipt {
	half := eps / 2
	charges := []accountant.Charge{
		accountant.LaplaceVec{Sens: degseq.GlobalSensitivity, Eps: half}.Charge(degseq.Query),
		accountant.SmoothLaplace{Beta: smoothsens.BetaFor(half, delta), Eps: half, Delta: delta}.Charge(smoothsens.Query),
	}
	return accountant.Receipt{
		Policy:  accountant.Sequential{}.Name(),
		Total:   accountant.Sequential{}.Compose(charges),
		Charges: charges,
	}
}

// Model returns the released SKG model, ready for synthetic sampling.
func (r *Result) Model() skg.Model { return skg.Model{Init: r.Init, K: r.K} }

// Estimate runs Algorithm 1 on g.
func Estimate(g *graph.Graph, opts Options) (*Result, error) {
	return EstimateCtx(pipeline.New(nil, opts.Workers, nil), g, opts)
}

// EstimateCtx runs Algorithm 1 on g under a pipeline Run: the worker
// budget comes from run (opts.Workers is ignored), one stage event pair
// per algorithm stage is emitted under the "algorithm1/" prefix
// (degree-release, feature-derivation, triangle-release, moment-fit),
// the context is checked between stages and inside every parallel
// stage, and a cancelled run returns run.Err(). A run that is never
// cancelled consumes exactly the rng draws Estimate consumes and
// releases the bit-identical estimate for the same seed.
func EstimateCtx(run *pipeline.Run, g *graph.Graph, opts Options) (*Result, error) {
	if opts.Rng == nil {
		return nil, fmt.Errorf("core: Options.Rng is required")
	}
	budget := dp.Budget{Eps: opts.Eps, Delta: opts.Delta}
	if err := budget.Validate(); err != nil {
		return nil, err
	}
	if opts.Delta == 0 {
		return nil, fmt.Errorf("core: the smooth-sensitivity triangle mechanism requires delta > 0")
	}
	k := opts.K
	if k <= 0 {
		k = kronmom.KForNodes(g.NumNodes())
	}
	if 1<<k < g.NumNodes() {
		return nil, fmt.Errorf("core: 2^%d < %d nodes", k, g.NumNodes())
	}
	alg := run.Sub("algorithm1")

	acc := opts.Accountant
	if acc == nil {
		acc = accountant.New(nil)
	}
	// The accountant may be shared across releases; the receipt of this
	// run covers only the charges recorded from here on.
	chargeBase := acc.Len()
	half := opts.Eps / 2

	// Steps 1–3: private degree sequence and degree-derived features.
	if err := alg.Err(); err != nil {
		return nil, err
	}
	stageDone := alg.Stage("degree-release")
	dtilde, err := degseq.PrivateAcc(acc, g, half, opts.Rng)
	if err != nil {
		return nil, err
	}
	stageDone()
	stageDone = alg.Stage("feature-derivation")
	feats := stats.FeaturesFromDegrees(dtilde)
	stageDone()

	// Steps 4–5: private triangle count via smooth sensitivity. The
	// smoothsens stage emits its own "triangle-release" events under the
	// algorithm1 prefix.
	if err := alg.Err(); err != nil {
		return nil, err
	}
	tri, err := smoothsens.PrivateTrianglesAccCtx(alg, acc, g, half, opts.Delta, opts.Rng)
	if err != nil {
		return nil, err
	}
	feats.Delta = tri.Noisy

	// Step 6: moment matching on the private features (post-processing).
	objective := opts.Objective
	if objective.Features.Count() == 0 {
		objective.Features = kronmom.AllFeatures()
	}
	deltaDropped := false
	if !opts.KeepNonpositiveDelta && feats.Delta <= 0 && objective.Features.Delta {
		objective.Features.Delta = false
		deltaDropped = true
	}
	stageDone = alg.Stage("moment-fit")
	est, err := kronmom.FitCtx(alg.Sub("moment-fit"), feats, k, kronmom.Options{
		Objective:    objective,
		RandomStarts: opts.RandomStarts,
		GridPoints:   opts.GridPoints,
		Rng:          opts.Rng.Split(),
	})
	if err != nil {
		return nil, err
	}
	stageDone()

	receipt := acc.ReceiptSince(chargeBase)
	return &Result{
		Init:         est.Init,
		K:            k,
		Features:     feats,
		DegreeSeq:    dtilde,
		Triangles:    tri,
		Moment:       est,
		Privacy:      receipt.Total,
		Charges:      receipt.Charges,
		Receipt:      receipt,
		DeltaDropped: deltaDropped,
	}, nil
}
