package core

import (
	"testing"

	"dpkron/internal/randx"
	"dpkron/internal/skg"
)

// TestEstimateWorkerInvariant checks the whole-pipeline contract: with a
// fixed seed, Algorithm 1 releases the same private initiator, features
// and degree sequence for every Workers setting, because each parallel
// stage (sampling, feature counting, sensitivity scan, moment descent)
// is sharded deterministically.
func TestEstimateWorkerInvariant(t *testing.T) {
	m, err := skg.NewModel(skg.Initiator{A: 0.99, B: 0.55, C: 0.35}, 10)
	if err != nil {
		t.Fatal(err)
	}
	g := m.SampleExact(randx.New(1))

	run := func(workers int) *Result {
		res, err := Estimate(g, Options{Eps: 0.5, Delta: 0.01, Workers: workers, Rng: randx.New(2)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, workers := range []int{4, 8} {
		got := run(workers)
		if got.Init != base.Init {
			t.Errorf("workers=%d: initiator %v != %v", workers, got.Init, base.Init)
		}
		if got.Features != base.Features {
			t.Errorf("workers=%d: features %+v != %+v", workers, got.Features, base.Features)
		}
		if got.Triangles.Noisy != base.Triangles.Noisy {
			t.Errorf("workers=%d: noisy triangles %v != %v", workers, got.Triangles.Noisy, base.Triangles.Noisy)
		}
		for i := range base.DegreeSeq {
			if got.DegreeSeq[i] != base.DegreeSeq[i] {
				t.Fatalf("workers=%d: degree sequence differs at %d", workers, i)
			}
		}
	}
}
