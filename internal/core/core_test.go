package core

import (
	"math"
	"reflect"
	"testing"

	"dpkron/internal/graph"
	"dpkron/internal/kronmom"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
	"dpkron/internal/stats"
)

func sample(t *testing.T, init skg.Initiator, k int, seed uint64) *graph.Graph {
	t.Helper()
	m := skg.Model{Init: init, K: k}
	return m.SampleExact(randx.New(seed))
}

func TestEstimateBudgetAccounting(t *testing.T) {
	g := sample(t, skg.Initiator{A: 0.9, B: 0.5, C: 0.2}, 8, 1)
	res, err := Estimate(g, Options{Eps: 0.2, Delta: 0.01, Rng: randx.New(2)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Privacy.Eps-0.2) > 1e-12 || math.Abs(res.Privacy.Delta-0.01) > 1e-12 {
		t.Fatalf("privacy total = %v", res.Privacy)
	}
	if len(res.Charges) != 2 {
		t.Fatalf("charges = %d, want 2", len(res.Charges))
	}
	if res.Charges[0].Eps != 0.1 || res.Charges[1].Eps != 0.1 {
		t.Fatalf("per-mechanism epsilon split wrong: %+v", res.Charges)
	}
	if res.Charges[0].Delta != 0 || res.Charges[1].Delta != 0.01 {
		t.Fatalf("delta charged to wrong mechanism: %+v", res.Charges)
	}
	// The receipt mirrors the charges and the planned schedule matches
	// the realized one exactly: Algorithm 1's spend is data-independent.
	if res.Receipt.Total != res.Privacy {
		t.Fatalf("receipt total %v != privacy %v", res.Receipt.Total, res.Privacy)
	}
	planned := PlannedReceipt(0.2, 0.01)
	if !reflect.DeepEqual(planned, res.Receipt) {
		t.Fatalf("planned receipt %+v != realized %+v", planned, res.Receipt)
	}
}

func TestEstimateMatchesNonPrivateAtHugeEpsilon(t *testing.T) {
	truth := skg.Initiator{A: 0.99, B: 0.45, C: 0.25}
	g := sample(t, truth, 10, 3)
	res, err := Estimate(g, Options{Eps: 1e7, Delta: 0.01, Rng: randx.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	nonPriv, err := kronmom.FitGraph(g, 10, kronmom.Options{Rng: randx.New(5)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Init.A-nonPriv.Init.A) > 0.02 ||
		math.Abs(res.Init.B-nonPriv.Init.B) > 0.02 ||
		math.Abs(res.Init.C-nonPriv.Init.C) > 0.02 {
		t.Fatalf("private (huge eps) %v vs non-private %v", res.Init, nonPriv.Init)
	}
}

func TestEstimateRecoversTruthAtModerateEpsilon(t *testing.T) {
	// The paper's headline: at ε = 0.2 the private estimate tracks the
	// non-private moment estimate closely on graphs of a few thousand
	// nodes. Use k=11 (2048 nodes) and a fixed seed.
	truth := skg.Initiator{A: 0.99, B: 0.45, C: 0.25}
	g := sample(t, truth, 11, 7)
	res, err := Estimate(g, Options{Eps: 0.2, Delta: 0.01, Rng: randx.New(8)})
	if err != nil {
		t.Fatal(err)
	}
	nonPriv, err := kronmom.FitGraph(g, 11, kronmom.Options{Rng: randx.New(9)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Init.A-nonPriv.Init.A) > 0.1 ||
		math.Abs(res.Init.B-nonPriv.Init.B) > 0.1 ||
		math.Abs(res.Init.C-nonPriv.Init.C) > 0.15 {
		t.Fatalf("private %v vs non-private %v", res.Init, nonPriv.Init)
	}
}

func TestEstimatePrivateFeaturesNearExactAtHugeEps(t *testing.T) {
	g := sample(t, skg.Initiator{A: 0.9, B: 0.5, C: 0.3}, 9, 5)
	res, err := Estimate(g, Options{Eps: 1e8, Delta: 0.5, Rng: randx.New(6)})
	if err != nil {
		t.Fatal(err)
	}
	exact := stats.FeaturesOf(g)
	if math.Abs(res.Features.E-exact.E) > 1 ||
		math.Abs(res.Features.H-exact.H) > exact.H*0.01+5 ||
		math.Abs(res.Features.T-exact.T) > exact.T*0.01+5 ||
		math.Abs(res.Features.Delta-exact.Delta) > 1 {
		t.Fatalf("features %+v vs exact %+v", res.Features, exact)
	}
}

func TestEstimateDeterministicGivenSeed(t *testing.T) {
	g := sample(t, skg.Initiator{A: 0.9, B: 0.5, C: 0.2}, 8, 9)
	a, err := Estimate(g, Options{Eps: 0.5, Delta: 0.05, Rng: randx.New(42)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(g, Options{Eps: 0.5, Delta: 0.05, Rng: randx.New(42)})
	if err != nil {
		t.Fatal(err)
	}
	if a.Init != b.Init || a.Features != b.Features {
		t.Fatalf("non-deterministic: %v vs %v", a.Init, b.Init)
	}
}

func TestEstimateValidation(t *testing.T) {
	g := graph.Complete(8)
	cases := []Options{
		{Eps: 0, Delta: 0.01, Rng: randx.New(1)},         // bad eps
		{Eps: 0.2, Delta: 0, Rng: randx.New(1)},          // delta required
		{Eps: 0.2, Delta: 1.5, Rng: randx.New(1)},        // bad delta
		{Eps: 0.2, Delta: 0.01},                          // missing rng
		{Eps: 0.2, Delta: 0.01, K: 2, Rng: randx.New(1)}, // 2^2 < 8
	}
	for i, o := range cases {
		if _, err := Estimate(g, o); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestEstimateInfersK(t *testing.T) {
	g := sample(t, skg.Initiator{A: 0.9, B: 0.5, C: 0.2}, 7, 2)
	res, err := Estimate(g, Options{Eps: 1, Delta: 0.1, Rng: randx.New(3)})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 7 {
		t.Fatalf("inferred K = %d, want 7", res.K)
	}
	if res.Model().K != 7 || res.Model().Init != res.Init {
		t.Fatal("Model() mismatch")
	}
}

func TestEstimateDegreeSequenceReleased(t *testing.T) {
	g := sample(t, skg.Initiator{A: 0.9, B: 0.5, C: 0.2}, 8, 4)
	res, err := Estimate(g, Options{Eps: 0.5, Delta: 0.01, Rng: randx.New(5)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DegreeSeq) != g.NumNodes() {
		t.Fatalf("degree sequence length %d, want %d", len(res.DegreeSeq), g.NumNodes())
	}
	for i := 1; i < len(res.DegreeSeq); i++ {
		if res.DegreeSeq[i] < res.DegreeSeq[i-1]-1e-9 {
			t.Fatal("released degree sequence not monotone")
		}
	}
}

func TestEstimateTriangleCalibration(t *testing.T) {
	g := sample(t, skg.Initiator{A: 0.95, B: 0.55, C: 0.3}, 9, 6)
	res, err := Estimate(g, Options{Eps: 0.2, Delta: 0.01, Rng: randx.New(7)})
	if err != nil {
		t.Fatal(err)
	}
	tri := res.Triangles
	if tri.Beta <= 0 || tri.SmoothSen <= 0 || tri.Scale <= 0 {
		t.Fatalf("calibration fields: %+v", tri)
	}
	wantBeta := 0.1 / (2 * math.Log(2/0.01))
	if math.Abs(tri.Beta-wantBeta) > 1e-12 {
		t.Fatalf("beta = %v, want %v (eps/2 must be used)", tri.Beta, wantBeta)
	}
	if res.Features.Delta != tri.Noisy {
		t.Fatal("features.Delta must equal the noisy triangle release")
	}
}

// Estimator outputs on neighbouring graphs should be statistically
// indistinguishable-ish; as a smoke check, the *calibration* (scale of
// noise) must not collapse to zero on any input.
func TestEstimateNonZeroNoiseScales(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := sample(t, skg.Initiator{A: 0.9, B: 0.5, C: 0.2}, 7, seed)
		res, err := Estimate(g, Options{Eps: 0.2, Delta: 0.01, Rng: randx.New(seed + 10)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Triangles.Scale <= 0 {
			t.Fatalf("seed %d: zero noise scale", seed)
		}
	}
}

func TestEstimateDropsNonpositiveDelta(t *testing.T) {
	// A sparse, triangle-poor graph at tiny epsilon makes a negative
	// noisy triangle count likely; scan seeds for one and check both
	// behaviours on it.
	g := sample(t, skg.Initiator{A: 0.9, B: 0.4, C: 0.1}, 9, 1)
	var dropped *Result
	for seed := uint64(0); seed < 200; seed++ {
		res, err := Estimate(g, Options{Eps: 0.05, Delta: 0.01, Rng: randx.New(seed)})
		if err != nil {
			t.Fatal(err)
		}
		if res.DeltaDropped {
			if res.Features.Delta > 0 {
				t.Fatal("DeltaDropped set although released delta is positive")
			}
			dropped = res
			// Verbatim mode must keep the feature.
			strict, err := Estimate(g, Options{Eps: 0.05, Delta: 0.01, KeepNonpositiveDelta: true, Rng: randx.New(seed)})
			if err != nil {
				t.Fatal(err)
			}
			if strict.DeltaDropped {
				t.Fatal("KeepNonpositiveDelta did not disable the drop")
			}
			break
		}
	}
	if dropped == nil {
		t.Fatal("no negative triangle draw in 200 seeds; test setup wrong")
	}
}
