package dpkron_test

import (
	"math"
	"strings"
	"testing"

	"dpkron"
)

func TestFacadeEndToEnd(t *testing.T) {
	truth := dpkron.Initiator{A: 0.99, B: 0.45, C: 0.25}
	model, err := dpkron.NewModel(truth, 10)
	if err != nil {
		t.Fatal(err)
	}
	g := model.Sample(dpkron.NewRand(1))
	if g.NumNodes() != 1024 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}

	res, err := dpkron.EstimatePrivate(g, dpkron.PrivateOptions{
		Eps: 0.5, Delta: 0.01, Rng: dpkron.NewRand(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Privacy.Eps != 0.5 || res.Privacy.Delta != 0.01 {
		t.Fatalf("privacy = %v", res.Privacy)
	}
	synth := res.Model().Sample(dpkron.NewRand(3))
	if synth.NumNodes() != g.NumNodes() {
		t.Fatal("synthetic graph node count mismatch")
	}
	// Edge counts should be within a factor of ~2 at this ε and size.
	ratio := float64(synth.NumEdges()) / float64(g.NumEdges())
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("synthetic/original edge ratio = %v", ratio)
	}
}

func TestFacadeBaselines(t *testing.T) {
	model, _ := dpkron.NewModel(dpkron.Initiator{A: 0.9, B: 0.5, C: 0.2}, 9)
	g := model.Sample(dpkron.NewRand(4))
	mom, err := dpkron.FitMoment(g, 0, dpkron.MomentOptions{Rng: dpkron.NewRand(5)})
	if err != nil {
		t.Fatal(err)
	}
	if mom.K != 9 {
		t.Fatalf("inferred k = %d", mom.K)
	}
	mle, err := dpkron.FitMLE(g, dpkron.MLEOptions{Iters: 5, Rng: dpkron.NewRand(6)})
	if err != nil {
		t.Fatal(err)
	}
	if mle.K != 9 {
		t.Fatalf("mle k = %d", mle.K)
	}
	feats, err := dpkron.FitMomentFeatures(dpkron.FeaturesOf(g), 9, dpkron.MomentOptions{Rng: dpkron.NewRand(7)})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(feats.Init.A - mom.Init.A); diff > 1e-9 {
		t.Fatalf("FitMomentFeatures disagrees with FitMoment: %v", diff)
	}
}

func TestFacadeGraphHelpers(t *testing.T) {
	g, err := dpkron.ReadEdgeList(strings.NewReader("0 1\n1 2\n2 0\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if dpkron.Triangles(g) != 1 {
		t.Fatal("triangle count")
	}
	f := dpkron.FeaturesOf(g)
	if f.E != 3 || f.Delta != 1 || f.H != 3 {
		t.Fatalf("features = %+v", f)
	}
	hop := dpkron.HopPlot(g)
	if hop[len(hop)-1] != 9 {
		t.Fatalf("hop plot = %v", hop)
	}
	if dd := dpkron.DegreeDistribution(g); len(dd) != 1 || dd[0].Degree != 2 {
		t.Fatalf("degree distribution = %+v", dd)
	}
	if cc := dpkron.ClusteringByDegree(g); len(cc) != 1 || cc[0].Value != 1 {
		t.Fatalf("clustering = %+v", cc)
	}
	sv := dpkron.ScreeValues(g, 3, dpkron.NewRand(1))
	if len(sv) == 0 || math.Abs(sv[0]-2) > 1e-6 {
		t.Fatalf("scree = %v", sv)
	}
	nv := dpkron.NetworkValues(g, dpkron.NewRand(2))
	if len(nv) != 3 || math.Abs(nv[0]-1/math.Sqrt(3)) > 1e-6 {
		t.Fatalf("network values = %v", nv)
	}
	approx := dpkron.ApproxHopPlot(g, 64, dpkron.NewRand(3))
	if len(approx) == 0 {
		t.Fatal("approx hop plot empty")
	}
	b := dpkron.NewBuilder(3)
	b.AddEdge(0, 1)
	if b.Build().NumEdges() != 1 {
		t.Fatal("builder")
	}
	if dpkron.FromEdges(2, [][2]int{{0, 1}}).NumEdges() != 1 {
		t.Fatal("FromEdges")
	}
}
