package dpkron_test

import (
	"testing"

	"dpkron/internal/accountant"
	"dpkron/internal/core"
	"dpkron/internal/degseq"
	"dpkron/internal/dp"
	"dpkron/internal/randx"
	"dpkron/internal/smoothsens"
)

// PR 4 routes every noise draw through accounted mechanism handles
// (internal/accountant). Charging is pure bookkeeping over the seeded
// randx streams, so the accounted paths must release the exact bits
// the PR 2/PR 3 paths released. These tests re-pin the PR 2 hashes
// from pr3_fingerprint_test.go against the accounted entry points —
// with a live accountant, and with the tightest limit that still
// admits the run, so the enforcement branch itself is exercised.

func TestFingerprintAccountedEstimate(t *testing.T) {
	g := fpGraphK10(t)
	const (
		wantInit  = uint64(0x1c23d17293445957)
		wantFeats = uint64(0x297d918e6156a3fb)
	)
	// The accountant's limit is exactly the requested budget: every
	// charge must still be admitted, and the released bits must match
	// the unaccounted PR 2/PR 3 pins.
	acc := accountant.New(nil).WithLimit(dp.Budget{Eps: 0.5, Delta: 0.01})
	res, err := core.EstimateCtx(liveRun(t, 4), g, core.Options{
		Eps: 0.5, Delta: 0.01, Rng: randx.New(9), Accountant: acc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := fpHashFloats(res.Init.A, res.Init.B, res.Init.C); got != wantInit {
		t.Errorf("accounted init fingerprint = %#x, want %#x (PR 2)", got, wantInit)
	}
	if got := fpHashFloats(res.Features.E, res.Features.H, res.Features.T, res.Features.Delta); got != wantFeats {
		t.Errorf("accounted features fingerprint = %#x, want %#x (PR 2)", got, wantFeats)
	}
	// The receipt matches the planned schedule charge for charge.
	rec := acc.Receipt()
	if len(rec.Charges) != 2 {
		t.Fatalf("receipt charges = %d, want 2", len(rec.Charges))
	}
	planned := core.PlannedReceipt(0.5, 0.01)
	for i := range rec.Charges {
		if rec.Charges[i] != planned.Charges[i] {
			t.Errorf("charge %d: realized %+v != planned %+v", i, rec.Charges[i], planned.Charges[i])
		}
	}
	if res.Receipt.Total != rec.Total {
		t.Errorf("result receipt total %v != accountant total %v", res.Receipt.Total, rec.Total)
	}
}

func TestFingerprintAccountedMechanisms(t *testing.T) {
	g := fpGraphK10(t)

	// degseq: the accounted release equals the historical one bit for bit.
	acc := accountant.New(nil)
	got, err := degseq.PrivateAcc(acc, g, 0.25, randx.New(19))
	if err != nil {
		t.Fatal(err)
	}
	want := degseq.Private(g, 0.25, randx.New(19))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PrivateAcc[%d] = %v, Private = %v", i, got[i], want[i])
		}
	}
	if ch := acc.Charges(); len(ch) != 1 || ch[0].Query != degseq.Query || ch[0].Sensitivity != degseq.GlobalSensitivity {
		t.Fatalf("degseq charge = %+v", acc.Charges())
	}

	// smoothsens: the accounted triangle release re-pins the PR 2 hash.
	const wantSS = uint64(0x982b28ed09bc9fe4)
	tri, err := smoothsens.PrivateTrianglesAccCtx(liveRun(t, 4), accountant.New(nil), g, 0.3, 0.01, randx.New(23))
	if err != nil {
		t.Fatal(err)
	}
	if got := fpHashFloats(tri.Noisy, float64(tri.Exact), tri.SmoothSen, tri.Scale); got != wantSS {
		t.Errorf("PrivateTrianglesAccCtx fingerprint = %#x, want %#x (PR 2)", got, wantSS)
	}
}

// TestAccountedEstimateRefusalDrawsNoNoise: a refused charge aborts
// before its mechanism consumes randomness, so a rerun with a fresh
// accountant releases exactly what an unconstrained run releases — the
// refusal cannot skew later draws.
func TestAccountedEstimateRefusalDrawsNoNoise(t *testing.T) {
	g := fpGraphK10(t)
	rng := randx.New(9)
	// Limit below ε/2: the very first charge is refused.
	acc := accountant.New(nil).WithLimit(dp.Budget{Eps: 0.1, Delta: 0.01})
	if _, err := core.EstimateCtx(liveRun(t, 4), g, core.Options{
		Eps: 0.5, Delta: 0.01, Rng: rng, Accountant: acc,
	}); err == nil {
		t.Fatal("over-limit estimate succeeded")
	}
	if acc.Len() != 0 {
		t.Fatalf("refused run recorded %d charges", acc.Len())
	}
	// The same rng instance, untouched by the refusal, now produces the
	// pinned release.
	res, err := core.EstimateCtx(liveRun(t, 4), g, core.Options{Eps: 0.5, Delta: 0.01, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	const wantInit = uint64(0x1c23d17293445957)
	if got := fpHashFloats(res.Init.A, res.Init.B, res.Init.C); got != wantInit {
		t.Errorf("post-refusal fingerprint = %#x, want %#x (rng was perturbed)", got, wantInit)
	}
}
