#!/usr/bin/env bash
# Runs the perf-trajectory benchmarks (graph construction, KronFit
# Metropolis, ball dropping — the hot paths optimized in PR 2 — plus
# PR 3's pipeline-overhead pairs, PR 4's mechanism-dispatch pairs,
# PR 5's dataset text-parse vs binary-load pairs, PR 6's release
# cache cold-fit vs cached-fit pairs, PR 7's journal plain vs
# journaled job-lifecycle pairs, PR 8's out-of-core pairs — v1
# decode vs v2 mmap open, and in-memory vs streamed generate-to-store
# with peak-heap gauges — PR 9's uninstrumented vs fully
# instrumented job-lifecycle pairs, and PR 10's untraced vs
# span-traced job-lifecycle pairs) and writes their numbers to
# BENCH_10.json so future PRs have a recorded trajectory to compare
# against.
#
# Usage: scripts/bench.sh [output.json]
#
# Environment:
#   BENCHTIME   go test -benchtime value for the heavy trajectory
#               benchmarks (default 3x)
#   DISPATCH_BENCHTIME, DISPATCH_COUNT
#               benchtime (default 500x) and repetition count (default
#               3) for the MechanismDispatch family: its release units
#               are 0.1–5 ms, so hundreds of iterations and a
#               min-of-three are needed before the direct/accounted
#               ratio is signal rather than scheduler noise
#   RELEASE_COUNT
#               repetition count (default 3) for the ReleaseCache
#               family: the cached leg is ~0.1 ms, so a min-of-three
#               keeps the cached_over_cold speedup noise-robust
#   JOURNAL_COUNT
#               repetition count (default 3) for the JournalOverhead
#               family: the journal's per-job cost is two fsyncs (a
#               fixed handful of ms) against a ~1.4 s fit, so a
#               min-of-three keeps the journal_over_plain ratio
#               noise-robust
#   OBS_COUNT
#               repetition count (default 3) for the ObsOverhead
#               family: telemetry's per-job cost is a handful of atomic
#               updates and one log record against a ~1.4 s fit, so a
#               min-of-three keeps the instrumented_over_plain ratio
#               noise-robust
#   TRACE_COUNT
#               repetition count (default 3) for the TraceOverhead
#               family: span tracing's per-job cost is a few dozen
#               small allocations against a ~1.4 s fit, so a
#               min-of-three keeps the traced_over_plain ratio
#               noise-robust
#   STREAM_BENCHTIME
#               benchtime (default 1x) for the StreamingGenerate
#               family: each op is a full multi-second
#               generate-to-store at k=20..24, and its headline number
#               is the peak-heap gauge — a max, not a mean — so one
#               iteration is already the measurement
#   BASELINE    optional path to a previous BENCH_*.json whose ns/op
#               numbers become the "baseline_ns_op" fields; without it,
#               the pre-PR-2 numbers hardcoded below (sort.Slice Build,
#               per-edge math.Exp KronFit, map-based ball dropping,
#               measured on the same single-core container that
#               produced the checked-in BENCH_2.json) are used — but
#               only when BENCHTIME is the 3x those baselines were
#               measured at; at other benchtimes (e.g. CI's 1x smoke on
#               a shared runner) the ratios would be cross-machine
#               noise, so baseline/speedup fields are omitted.
#
# The PipelineOverhead family is emitted as matched plain/ctx pairs and
# summarized in a "pipeline_overhead" section: ctx_over_plain is the
# ns/op ratio of the context-aware path to the historical blocking path
# on the same workload (PR 3's acceptance bound is <= 1.02 at a
# statistically meaningful benchtime). The MechanismDispatch family is
# likewise paired into a "mechanism_dispatch" section:
# accounted_over_direct is the ns/op ratio of drawing noise through a
# charged accountant mechanism to the direct dp call on the same
# release unit (PR 4's acceptance bound is <= 1.02). The DatasetLoad
# family is paired into a "dataset_load" section: binary_over_text is
# the ns/op ratio of decoding the store's binary CSR form to parsing
# the same graph's SNAP text (PR 5's acceptance bar is well under 1 —
# binary load measurably faster — at any benchtime, since both legs
# decode from memory on the same machine). The ReleaseCache family is
# paired into a "release_cache" section: cached_over_cold is the
# throughput ratio of re-serving a memoized private fit to computing
# it (PR 6's acceptance bar is >= 20 at k=16 — same machine, same
# question, so the ratio holds at any benchtime). The JournalOverhead
# family is paired into a "journal_overhead" section:
# journal_over_plain is the ns/op ratio of a full job lifecycle
# (admission through completion of a K=15 private fit over the HTTP
# API) on a journaling server to the same lifecycle without a journal
# (PR 7's acceptance bound is <= 1.02 — durability's two fsyncs per
# job must disappear into the fit). The ObsOverhead family is paired
# into an "obs_overhead" section: instrumented_over_plain is the ns/op
# ratio of the same lifecycle on a server carrying the full PR 9
# telemetry surface (metrics registry, JSON logging, pprof mounted) to
# an uninstrumented one (PR 9's acceptance bound is <= 1.02). The
# TraceOverhead family is paired into a "trace_overhead" section:
# traced_over_plain is the ns/op ratio of the same lifecycle on a
# server recording full per-job span trees (stage spans,
# serving-layer spans, audit events) to an untraced one (PR 10's
# acceptance bound is <= 1.02). The
# MmapLoad family is paired into
# a "mmap_load" section: v1_over_v2 is the ns ratio of a full v1
# read+decode to a v2 mmap open of the same graph (PR 8's acceptance
# bar is >= 10 at k=18 — the v2 open is O(1) in the graph, so the
# ratio only grows with k and holds at any benchtime). The
# StreamingGenerate family is paired into a "streaming_generate"
# section on its heap-peak-bytes gauges: streamed_over_inmem is the
# ratio of peak heap growth streaming a ball-drop sample to disk to
# materializing the same sample in memory first (PR 8's acceptance
# bar is <= 0.25 at k=20, with the k=22/24 rows as the out-of-core
# points).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_10.json}"
benchtime="${BENCHTIME:-3x}"
dispatch_benchtime="${DISPATCH_BENCHTIME:-500x}"
stream_benchtime="${STREAM_BENCHTIME:-1x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run=NONE -bench='GraphBuild|KronFitMetropolis|BallDropN|PipelineOverhead|DatasetLoad|MmapLoad' \
  -benchtime="$benchtime" -count=1 . | tee "$raw" >&2
go test -run=NONE -bench='MechanismDispatch' \
  -benchtime="$dispatch_benchtime" -count="${DISPATCH_COUNT:-3}" . | tee -a "$raw" >&2
go test -run=NONE -bench='ReleaseCache' \
  -benchtime="$benchtime" -count="${RELEASE_COUNT:-3}" . | tee -a "$raw" >&2
go test -run=NONE -bench='JournalOverhead' \
  -benchtime="$benchtime" -count="${JOURNAL_COUNT:-3}" . | tee -a "$raw" >&2
go test -run=NONE -bench='ObsOverhead' \
  -benchtime="$benchtime" -count="${OBS_COUNT:-3}" . | tee -a "$raw" >&2
go test -run=NONE -bench='TraceOverhead' \
  -benchtime="$benchtime" -count="${TRACE_COUNT:-3}" . | tee -a "$raw" >&2
go test -run=NONE -bench='StreamingGenerate' \
  -benchtime="$stream_benchtime" -count=1 . | tee -a "$raw" >&2

awk -v benchtime="$benchtime" -v baseline_json="${BASELINE:-}" '
BEGIN {
  # Pre-PR-2 baselines (ns/op), measured at -benchtime=3x on the
  # reference container (GOMAXPROCS=1, go1.24, linux/amd64).
  base["GraphBuild/m=100000"]      = 16816322
  base["GraphBuild/m=1000000"]     = 215545423
  base["KronFitMetropolis/K=12"]   = 33203829
  base["KronFitMetropolis/K=14"]   = 133647874
  base["BallDropN/K=16"]           = 415158479
  base["BallDropN/K=18"]           = 956767476
  base["BallDropN/K=20"]           = 2194482107
  # Hardcoded baselines are 3x single-core measurements; do not
  # compute speedups against a different benchtime or machine unless
  # the caller supplied its own BASELINE file.
  skip_base = (baseline_json == "" && benchtime != "3x")
  if (baseline_json != "") {
    while ((getline line < baseline_json) > 0) {
      if (match(line, /"name": *"[^"]+"/)) {
        name = substr(line, RSTART, RLENGTH)
        gsub(/"name": *"|"/, "", name)
      }
      if (match(line, /"ns_op": *[0-9]+/)) {
        v = substr(line, RSTART, RLENGTH)
        gsub(/[^0-9]/, "", v)
        if (name != "") base[name] = v + 0
      }
    }
    close(baseline_json)
  }
  n = 0
}
/^Benchmark(GraphBuild|KronFitMetropolis|BallDropN|PipelineOverhead|MechanismDispatch|DatasetLoad|ReleaseCache|JournalOverhead|ObsOverhead|TraceOverhead|MmapLoad|StreamingGenerate)\// {
  name = $1
  sub(/^Benchmark/, "", name)
  sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
  ns = ""; bytes = ""; allocs = ""; hp = ""
  for (i = 2; i <= NF; i++) {
    if ($i == "ns/op")           ns = $(i-1)
    if ($i == "B/op")            bytes = $(i-1)
    if ($i == "allocs/op")       allocs = $(i-1)
    if ($i == "heap-peak-bytes") hp = $(i-1)
  }
  if (ns == "") next
  # -count > 1 repeats each benchmark line; keep the fastest run per
  # name (the usual noise-robust estimator for matched-pair ratios).
  if (name in idx) {
    i2 = idx[name]
    if (ns + 0 < nss[i2] + 0) { nss[i2] = ns; bs[i2] = bytes; as[i2] = allocs; hps[i2] = hp }
  } else {
    idx[name] = n
    names[n] = name; nss[n] = ns; bs[n] = bytes; as[n] = allocs; hps[n] = hp
    n++
  }
  if (!(name in ns_by_name) || ns + 0 < ns_by_name[name] + 0) ns_by_name[name] = ns + 0
  # The peak-heap gauge is a max across repeats, not a min: keep the
  # largest observation per name.
  if (hp != "" && (!(name in hp_by_name) || hp + 0 > hp_by_name[name] + 0)) hp_by_name[name] = hp + 0
}
/^PASS|^ok / { status = $0 }
END {
  if (n == 0) {
    print "bench.sh: no benchmark lines parsed" > "/dev/stderr"
    exit 1
  }
  "go env GOVERSION" | getline gover
  "date -u +%Y-%m-%dT%H:%M:%SZ" | getline stamp
  printf "{\n"
  printf "  \"pr\": 10,\n"
  printf "  \"generated\": \"%s\",\n", stamp
  printf "  \"go\": \"%s\",\n", gover
  printf "  \"benchtime\": \"%s\",\n", benchtime
  printf "  \"benchmarks\": [\n"
  for (i = 0; i < n; i++) {
    # %.0f, not %d: some awks clamp %d at 32 bits and ns/op exceeds it.
    printf "    {\"name\": \"%s\", \"ns_op\": %.0f", names[i], nss[i]
    if (bs[i] != "")  printf ", \"b_op\": %.0f", bs[i]
    if (as[i] != "")  printf ", \"allocs_op\": %.0f", as[i]
    if (hps[i] != "") printf ", \"heap_peak_bytes\": %.0f", hps[i]
    if (!skip_base && names[i] in base)
      printf ", \"baseline_ns_op\": %.0f, \"speedup\": %.2f", base[names[i]], base[names[i]] / nss[i]
    printf "}%s\n", (i < n - 1 ? "," : "")
  }
  printf "  ],\n"
  # Matched plain/ctx pairs -> ctx/plain overhead ratios.
  printf "  \"pipeline_overhead\": [\n"
  np = 0
  for (name in ns_by_name) {
    if (name ~ /^PipelineOverhead\/.*-plain$/) {
      stem = name
      sub(/-plain$/, "", stem)
      ctxname = stem "-ctx"
      if (ctxname in ns_by_name) pairs[np++] = stem
    }
  }
  # Sort stems for stable output.
  for (i = 0; i < np; i++)
    for (j = i + 1; j < np; j++)
      if (pairs[j] < pairs[i]) { tmp = pairs[i]; pairs[i] = pairs[j]; pairs[j] = tmp }
  for (i = 0; i < np; i++) {
    stem = pairs[i]
    short = stem
    sub(/^PipelineOverhead\//, "", short)
    plain = ns_by_name[stem "-plain"] + 0
    ctx = ns_by_name[stem "-ctx"] + 0
    printf "    {\"workload\": \"%s\", \"plain_ns_op\": %.0f, \"ctx_ns_op\": %.0f, \"ctx_over_plain\": %.4f}%s\n", \
      short, plain, ctx, ctx / plain, (i < np - 1 ? "," : "")
  }
  printf "  ],\n"
  # Matched direct/accounted pairs -> accounting overhead ratios.
  printf "  \"mechanism_dispatch\": [\n"
  nm = 0
  for (name in ns_by_name) {
    if (name ~ /^MechanismDispatch\/.*-direct$/) {
      stem = name
      sub(/-direct$/, "", stem)
      accname = stem "-accounted"
      if (accname in ns_by_name) mpairs[nm++] = stem
    }
  }
  for (i = 0; i < nm; i++)
    for (j = i + 1; j < nm; j++)
      if (mpairs[j] < mpairs[i]) { tmp = mpairs[i]; mpairs[i] = mpairs[j]; mpairs[j] = tmp }
  for (i = 0; i < nm; i++) {
    stem = mpairs[i]
    short = stem
    sub(/^MechanismDispatch\//, "", short)
    direct = ns_by_name[stem "-direct"] + 0
    accounted = ns_by_name[stem "-accounted"] + 0
    printf "    {\"release\": \"%s\", \"direct_ns_op\": %.0f, \"accounted_ns_op\": %.0f, \"accounted_over_direct\": %.4f}%s\n", \
      short, direct, accounted, accounted / direct, (i < nm - 1 ? "," : "")
  }
  printf "  ],\n"
  # Matched text/binary pairs -> dataset-load speed ratios.
  printf "  \"dataset_load\": [\n"
  nd = 0
  for (name in ns_by_name) {
    if (name ~ /^DatasetLoad\/.*-text$/) {
      stem = name
      sub(/-text$/, "", stem)
      binname = stem "-binary"
      if (binname in ns_by_name) dpairs[nd++] = stem
    }
  }
  for (i = 0; i < nd; i++)
    for (j = i + 1; j < nd; j++)
      if (dpairs[j] < dpairs[i]) { tmp = dpairs[i]; dpairs[i] = dpairs[j]; dpairs[j] = tmp }
  for (i = 0; i < nd; i++) {
    stem = dpairs[i]
    short = stem
    sub(/^DatasetLoad\//, "", short)
    text = ns_by_name[stem "-text"] + 0
    bin = ns_by_name[stem "-binary"] + 0
    printf "    {\"graph\": \"%s\", \"text_parse_ns_op\": %.0f, \"binary_load_ns_op\": %.0f, \"binary_over_text\": %.4f, \"speedup\": %.2f}%s\n", \
      short, text, bin, bin / text, text / bin, (i < nd - 1 ? "," : "")
  }
  printf "  ],\n"
  # Matched cold/cached pairs -> release-cache speedups (qps = fits/s).
  printf "  \"release_cache\": [\n"
  nr = 0
  for (name in ns_by_name) {
    if (name ~ /^ReleaseCache\/.*-cold$/) {
      stem = name
      sub(/-cold$/, "", stem)
      cachedname = stem "-cached"
      if (cachedname in ns_by_name) rpairs[nr++] = stem
    }
  }
  for (i = 0; i < nr; i++)
    for (j = i + 1; j < nr; j++)
      if (rpairs[j] < rpairs[i]) { tmp = rpairs[i]; rpairs[i] = rpairs[j]; rpairs[j] = tmp }
  for (i = 0; i < nr; i++) {
    stem = rpairs[i]
    short = stem
    sub(/^ReleaseCache\//, "", short)
    cold = ns_by_name[stem "-cold"] + 0
    cached = ns_by_name[stem "-cached"] + 0
    printf "    {\"question\": \"%s\", \"cold_ns_op\": %.0f, \"cached_ns_op\": %.0f, \"cold_qps\": %.2f, \"cached_qps\": %.2f, \"cached_over_cold\": %.1f}%s\n", \
      short, cold, cached, 1e9 / cold, 1e9 / cached, cold / cached, (i < nr - 1 ? "," : "")
  }
  printf "  ],\n"
  # Matched plain/journal pairs -> durability overhead on the serving
  # path (PR 7 acceptance bound: journal_over_plain <= 1.02).
  printf "  \"journal_overhead\": [\n"
  nj = 0
  for (name in ns_by_name) {
    if (name ~ /^JournalOverhead\/.*-plain$/) {
      stem = name
      sub(/-plain$/, "", stem)
      jname = stem "-journal"
      if (jname in ns_by_name) jspairs[nj++] = stem
    }
  }
  for (i = 0; i < nj; i++)
    for (j = i + 1; j < nj; j++)
      if (jspairs[j] < jspairs[i]) { tmp = jspairs[i]; jspairs[i] = jspairs[j]; jspairs[j] = tmp }
  for (i = 0; i < nj; i++) {
    stem = jspairs[i]
    short = stem
    sub(/^JournalOverhead\//, "", short)
    plain = ns_by_name[stem "-plain"] + 0
    journal = ns_by_name[stem "-journal"] + 0
    printf "    {\"job\": \"%s\", \"plain_ns_op\": %.0f, \"journal_ns_op\": %.0f, \"journal_over_plain\": %.4f}%s\n", \
      short, plain, journal, journal / plain, (i < nj - 1 ? "," : "")
  }
  printf "  ],\n"
  # Matched plain/instrumented pairs -> telemetry overhead on the
  # serving path (PR 9 acceptance bound: instrumented_over_plain
  # <= 1.02).
  printf "  \"obs_overhead\": [\n"
  no = 0
  for (name in ns_by_name) {
    if (name ~ /^ObsOverhead\/.*-plain$/) {
      stem = name
      sub(/-plain$/, "", stem)
      oname = stem "-instrumented"
      if (oname in ns_by_name) opairs[no++] = stem
    }
  }
  for (i = 0; i < no; i++)
    for (j = i + 1; j < no; j++)
      if (opairs[j] < opairs[i]) { tmp = opairs[i]; opairs[i] = opairs[j]; opairs[j] = tmp }
  for (i = 0; i < no; i++) {
    stem = opairs[i]
    short = stem
    sub(/^ObsOverhead\//, "", short)
    plain = ns_by_name[stem "-plain"] + 0
    inst = ns_by_name[stem "-instrumented"] + 0
    printf "    {\"job\": \"%s\", \"plain_ns_op\": %.0f, \"instrumented_ns_op\": %.0f, \"instrumented_over_plain\": %.4f}%s\n", \
      short, plain, inst, inst / plain, (i < no - 1 ? "," : "")
  }
  printf "  ],\n"
  # Matched plain/traced pairs -> span-tracing overhead on the serving
  # path (PR 10 acceptance bound: traced_over_plain <= 1.02).
  printf "  \"trace_overhead\": [\n"
  nt = 0
  for (name in ns_by_name) {
    if (name ~ /^TraceOverhead\/.*-plain$/) {
      stem = name
      sub(/-plain$/, "", stem)
      tname = stem "-traced"
      if (tname in ns_by_name) tpairs[nt++] = stem
    }
  }
  for (i = 0; i < nt; i++)
    for (j = i + 1; j < nt; j++)
      if (tpairs[j] < tpairs[i]) { tmp = tpairs[i]; tpairs[i] = tpairs[j]; tpairs[j] = tmp }
  for (i = 0; i < nt; i++) {
    stem = tpairs[i]
    short = stem
    sub(/^TraceOverhead\//, "", short)
    plain = ns_by_name[stem "-plain"] + 0
    traced = ns_by_name[stem "-traced"] + 0
    printf "    {\"job\": \"%s\", \"plain_ns_op\": %.0f, \"traced_ns_op\": %.0f, \"traced_over_plain\": %.4f}%s\n", \
      short, plain, traced, traced / plain, (i < nt - 1 ? "," : "")
  }
  printf "  ],\n"
  # Matched v1decode/v2open pairs -> mmap open speedups (PR 8
  # acceptance bar: v1_over_v2 >= 10 at k=18).
  printf "  \"mmap_load\": [\n"
  nv = 0
  for (name in ns_by_name) {
    if (name ~ /^MmapLoad\/.*-v1decode$/) {
      stem = name
      sub(/-v1decode$/, "", stem)
      v2name = stem "-v2open"
      if (v2name in ns_by_name) vpairs[nv++] = stem
    }
  }
  for (i = 0; i < nv; i++)
    for (j = i + 1; j < nv; j++)
      if (vpairs[j] < vpairs[i]) { tmp = vpairs[i]; vpairs[i] = vpairs[j]; vpairs[j] = tmp }
  for (i = 0; i < nv; i++) {
    stem = vpairs[i]
    short = stem
    sub(/^MmapLoad\//, "", short)
    v1 = ns_by_name[stem "-v1decode"] + 0
    v2 = ns_by_name[stem "-v2open"] + 0
    printf "    {\"graph\": \"%s\", \"v1_decode_ns_op\": %.0f, \"v2_open_ns_op\": %.0f, \"v1_over_v2\": %.1f}%s\n", \
      short, v1, v2, v1 / v2, (i < nv - 1 ? "," : "")
  }
  printf "  ],\n"
  # Matched inmem/streamed pairs -> peak-heap ratios of the two
  # generate-to-store routes (PR 8 acceptance bar: streamed_over_inmem
  # <= 0.25 at k=20; k=22/24 are the out-of-core points).
  printf "  \"streaming_generate\": [\n"
  ns2 = 0
  for (name in hp_by_name) {
    if (name ~ /^StreamingGenerate\/.*-inmem$/) {
      stem = name
      sub(/-inmem$/, "", stem)
      sname = stem "-streamed"
      if (sname in hp_by_name) spairs2[ns2++] = stem
    }
  }
  for (i = 0; i < ns2; i++)
    for (j = i + 1; j < ns2; j++)
      if (spairs2[j] < spairs2[i]) { tmp = spairs2[i]; spairs2[i] = spairs2[j]; spairs2[j] = tmp }
  for (i = 0; i < ns2; i++) {
    stem = spairs2[i]
    short = stem
    sub(/^StreamingGenerate\//, "", short)
    ih = hp_by_name[stem "-inmem"] + 0
    sh = hp_by_name[stem "-streamed"] + 0
    printf "    {\"point\": \"%s\", \"inmem_ns_op\": %.0f, \"streamed_ns_op\": %.0f, \"inmem_peak_heap_bytes\": %.0f, \"streamed_peak_heap_bytes\": %.0f, \"streamed_over_inmem\": %.4f}%s\n", \
      short, ns_by_name[stem "-inmem"], ns_by_name[stem "-streamed"], ih, sh, sh / ih, (i < ns2 - 1 ? "," : "")
  }
  printf "  ]\n}\n"
}' "$raw" > "$out"

echo "wrote $out" >&2
