package dpkron

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"time"

	"dpkron/internal/accountant"
	"dpkron/internal/anf"
	"dpkron/internal/core"
	"dpkron/internal/dataset"
	"dpkron/internal/dp"
	"dpkron/internal/graph"
	"dpkron/internal/journal"
	"dpkron/internal/kronfit"
	"dpkron/internal/kronmom"
	"dpkron/internal/linalg"
	"dpkron/internal/obs"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
	"dpkron/internal/release"
	"dpkron/internal/skg"
	"dpkron/internal/stats"
	"dpkron/internal/trace"
)

// Re-exported types forming the supported public API. The concrete
// implementations live in internal packages; the aliases keep a single
// import path for users while allowing the internals to be reorganized.
type (
	// Graph is an immutable undirected simple graph in CSR form.
	Graph = graph.Graph
	// Builder accumulates edges and produces a Graph.
	Builder = graph.Builder
	// Rand is the deterministic random source used across the module.
	Rand = randx.Rand
	// Initiator is the symmetric 2×2 SKG initiator matrix [a b; b c].
	Initiator = skg.Initiator
	// Model is an SKG on 2^K nodes defined by Initiator^[K].
	Model = skg.Model
	// Features holds the four matching statistics (E, H, T, Δ).
	Features = stats.Features
	// Budget is an (ε, δ) differential privacy guarantee.
	Budget = dp.Budget
	// Accountant records mechanism charges, composes them under a
	// pluggable policy, and can refuse charges beyond a limit.
	Accountant = accountant.Accountant
	// Charge is one recorded mechanism invocation (query, mechanism,
	// calibration, price).
	Charge = accountant.Charge
	// Receipt is the machine-readable spend record of a release:
	// itemized charges plus the composed total.
	Receipt = accountant.Receipt
	// Ledger is a persistent per-dataset privacy-budget store that
	// refuses spends once a dataset's configured budget is exhausted.
	Ledger = accountant.Ledger
	// LedgerAccount is one dataset's ledger entry (budget, spend,
	// receipts).
	LedgerAccount = accountant.Account
	// DatasetStore is a persistent, content-addressed graph store:
	// graphs are imported once (from SNAP text, gzip streams, Matrix
	// Market files or the binary codec) and later loaded by the same
	// dataset id the privacy ledger charges.
	DatasetStore = dataset.Store
	// DatasetMeta is one stored dataset's metadata (id, name, size,
	// source format, import time).
	DatasetMeta = dataset.Meta
	// ReleaseCache is a persistent content-addressed cache of released
	// private fits: once a question (dataset, ε, δ, K, seed, mechanism
	// schedule) has been answered, re-serving the stored release is
	// pure post-processing and costs zero privacy budget.
	ReleaseCache = release.Cache
	// ReleaseKey canonically identifies one private-fit question; its
	// Fingerprint is the cache's content address.
	ReleaseKey = release.Key
	// ReleaseEntry is one cached release: fingerprint, key, integrity
	// checksum and the stored result payload.
	ReleaseEntry = release.Entry
	// Journal is an append-only checksummed log of server job
	// transitions: the admission record (request, planned receipt,
	// idempotency token) is fsynced before the ledger is debited, so a
	// restart can resume an interrupted fit without a second debit.
	Journal = journal.Journal
	// JournalRecord is one decoded journal frame (job id, transition,
	// payload).
	JournalRecord = journal.Record
	// JournalJobState is one job's state folded from its journal
	// records; see JournalReduce.
	JournalJobState = journal.JobState
	// PrivateOptions configures the paper's Algorithm 1.
	PrivateOptions = core.Options
	// PrivateResult is the (ε, δ)-DP estimation outcome.
	PrivateResult = core.Result
	// MomentOptions configures the Gleich–Owen KronMom estimator.
	MomentOptions = kronmom.Options
	// MomentEstimate is a KronMom fit.
	MomentEstimate = kronmom.Estimate
	// MLEOptions configures the Leskovec–Faloutsos KronFit estimator.
	MLEOptions = kronfit.Options
	// MLEResult is a KronFit fit.
	MLEResult = kronfit.Result
	// DegreePoint is one point of a per-degree aggregated series.
	DegreePoint = stats.DegreePoint
	// Run is the pipeline execution context threaded through the ...Ctx
	// entry points: a context.Context for cancellation/deadline, a
	// worker budget, and an optional progress sink. A nil *Run behaves
	// as a background run on all cores.
	Run = pipeline.Run
	// ProgressEvent is one stage/progress notification: a stage path
	// and the completed fraction (0 start, 1 done).
	ProgressEvent = pipeline.Event
	// ProgressSink receives pipeline progress events; calls are
	// serialized by the Run.
	ProgressSink = pipeline.Sink
	// MetricsRegistry holds named counters, gauges and histograms and
	// renders them in the Prometheus text exposition format. Hand one
	// to server.Options.Metrics to instrument the whole serving tier;
	// a nil registry makes every metric operation a no-op.
	MetricsRegistry = obs.Registry
	// Tracer records one trace: a tree of timed spans with attributes
	// and point events. Every method on a nil *Tracer (and on the nil
	// *TraceSpan it hands out) is a no-op, so tracing can be threaded
	// unconditionally and enabled by construction.
	Tracer = trace.Tracer
	// TraceSpan is one timed operation in a Tracer's tree; audit
	// events (ε/δ debits) attach here.
	TraceSpan = trace.Span
	// TraceTree is a Tracer's exportable snapshot — the JSON shape
	// GET /v1/jobs/{id}/trace serves and WriteChromeTrace consumes.
	TraceTree = trace.Tree
	// TraceStore is a bounded in-memory map of job id → Tracer; hand
	// one to server.Options.Traces to retain per-job traces (evicted
	// with job history).
	TraceStore = trace.Store
	// TraceContext is a W3C Trace Context identity (trace id, span
	// id, flags) as parsed from / rendered to a traceparent header.
	TraceContext = trace.Context
)

// NewRand returns a deterministic random source for the given seed.
func NewRand(seed uint64) *Rand { return randx.New(seed) }

// NewMetricsRegistry returns an empty metrics registry. Register it
// with a server (server.Options.Metrics) or instrument components
// directly; MetricsHandler serves its current state.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricsHandler returns an http.Handler rendering reg in the
// Prometheus text exposition format (version 0.0.4) — mount it at
// GET /metrics. A nil registry serves an empty exposition.
func MetricsHandler(reg *MetricsRegistry) http.Handler { return reg.Handler() }

// NewTracer returns a tracer for one traced operation. Pass the
// TraceContext parsed from an incoming traceparent header to join the
// caller's trace (ParseTraceparent), or the zero TraceContext to
// start a fresh one with a random trace id.
func NewTracer(ctx TraceContext) *Tracer { return trace.New(ctx) }

// NewTraceStore returns a bounded trace store (max <= 0 selects the
// default of 512 traces); hand it to server.Options.Traces to enable
// GET /v1/jobs/{id}/trace and the CLI's `job trace` waterfall.
func NewTraceStore(max int) *TraceStore { return trace.NewStore(max) }

// ParseTraceparent parses a W3C traceparent header value. ok reports
// whether it was well-formed; the parser never panics on hostile
// input.
func ParseTraceparent(h string) (TraceContext, bool) { return trace.ParseTraceparent(h) }

// WriteChromeTrace writes tr in the Chrome trace-event JSON format
// loadable by chrome://tracing and ui.perfetto.dev — the same export
// GET /v1/jobs/{id}/trace?format=chrome serves.
func WriteChromeTrace(w io.Writer, tr *TraceTree) error { return trace.WriteChrome(w, tr) }

// NewStructuredLogger returns a *slog.Logger writing one record per
// line to w. Format is "text" or "json"; level is "debug", "info",
// "warn" or "error". The serving tier (server.Options.Logger) emits
// request- and job-correlated records through it.
func NewStructuredLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	return obs.NewLogger(w, format, level)
}

// NewAccountant returns an unlimited sequential-composition
// accountant; cap it with WithLimit to enforce a budget. Pass it via
// PrivateOptions.Accountant to meter one or many estimation runs.
func NewAccountant() *Accountant { return accountant.New(nil) }

// OpenLedger loads (or initializes) the persistent privacy-budget
// ledger at path. Budgets are per dataset; see DatasetID.
func OpenLedger(path string) (*Ledger, error) { return accountant.Open(path) }

// DatasetID returns the stable content-addressed ledger id of g: two
// byte-identical graphs map to the same id in every process, so spend
// accrues across fits and restarts.
func DatasetID(g *Graph) string { return accountant.DatasetID(g) }

// PlannedReceipt returns the exact receipt EstimatePrivate will
// produce for a total budget (eps, delta), without touching any data:
// Algorithm 1's charge schedule is data-independent, so a ledger can
// be debited before the run is admitted.
func PlannedReceipt(eps, delta float64) Receipt { return core.PlannedReceipt(eps, delta) }

// OpenReleaseCache opens (or initializes) the persistent release cache
// rooted at dir. Entries are integrity-checked on every read; damaged
// files are reported as misses (and evicted), never served. See
// ExampleOpenReleaseCache.
func OpenReleaseCache(dir string) (*ReleaseCache, error) { return release.Open(dir) }

// OpenJournal opens (or creates) the durable job journal at path,
// recovering a torn tail from a mid-write crash and taking an exclusive
// lock on the file. A server given the journal (server.Options.Journal)
// replays it on startup and resumes interrupted fits; interior
// corruption surfaces as ErrJournalCorrupt, a live lock holder as
// ErrJournalLocked.
func OpenJournal(path string) (*Journal, error) { return journal.Open(path) }

// JournalDecode decodes every whole record in data, returning the
// records, the byte length of the valid prefix, and ErrJournalCorrupt
// if a damaged record interrupts the log (a torn final record is not an
// error: decoding simply stops at the last whole frame).
func JournalDecode(data []byte) ([]JournalRecord, int64, error) { return journal.Decode(data) }

// JournalReduce folds decoded records into per-job states, in first-seen
// order — the same reduction the server replays on startup.
func JournalReduce(recs []JournalRecord) []*JournalJobState { return journal.Reduce(recs) }

// Journal error conditions, re-exported for errors.Is checks.
var (
	// ErrJournalCorrupt reports a damaged interior record: bytes after
	// it cannot be trusted, so the journal refuses to open.
	ErrJournalCorrupt = journal.ErrCorrupt
	// ErrJournalLocked reports a live process already holding the
	// journal's exclusive lock.
	ErrJournalLocked = journal.ErrLocked
)

// ReleaseKeyFor builds the canonical cache key of the private-fit
// question (datasetID, eps, delta, k, seed). The mechanism schedule is
// derived from PlannedReceipt, so the key — like the ledger debit — is
// fixed before any data is touched.
func ReleaseKeyFor(datasetID string, eps, delta float64, k int, seed uint64) ReleaseKey {
	return release.KeyFor(datasetID, eps, delta, k, seed, core.PlannedReceipt(eps, delta))
}

// OpenStore opens (or initializes) the persistent dataset store rooted
// at dir. Stored graphs load bit-identically to parsing their original
// edge lists, so fixed-seed fits of a stored dataset reproduce fits of
// the source file exactly. See ExampleOpenStore.
func OpenStore(dir string) (*DatasetStore, error) { return dataset.Open(dir) }

// ImportDataset streams a graph from r into the store under its
// content-addressed id: SNAP edge-list text, gzipped streams (sniffed
// by magic), Matrix Market coordinate files and the store's own binary
// format are all accepted, and none of them materializes an
// intermediate edge slice. Importing bytes whose graph is already
// stored is an idempotent no-op returning the existing metadata.
func ImportDataset(s *DatasetStore, r io.Reader, name string) (DatasetMeta, error) {
	return s.ImportReader(r, name, dataset.DecodeOptions{})
}

// NewRun returns a pipeline Run over ctx (nil means background) with
// the given worker budget (<= 0 selects all cores) and optional
// progress sink. Pass the Run to the ...Ctx entry points; cancelling
// ctx makes them return promptly with ctx's error, and a Run that is
// never cancelled produces results bit-identical to the blocking entry
// points for the same seed.
func NewRun(ctx context.Context, workers int, sink ProgressSink) *Run {
	return pipeline.New(ctx, workers, sink)
}

// NewRunTimeout is NewRun with a deadline d (<= 0 means none) attached
// to ctx; the returned cancel function must be called to release the
// deadline's resources.
func NewRunTimeout(ctx context.Context, d time.Duration, workers int, sink ProgressSink) (*Run, context.CancelFunc) {
	return pipeline.WithTimeout(ctx, d, workers, sink)
}

// NewBuilder returns a Builder for a graph on n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph on n nodes; loops are dropped and duplicate
// edges merged.
func FromEdges(n int, edges [][2]int) *Graph { return graph.FromEdges(n, edges) }

// ReadEdgeList parses the SNAP edge-list text format ('#' comments, one
// whitespace-separated pair per line).
func ReadEdgeList(r io.Reader, minNodes int) (*Graph, error) {
	return graph.ReadEdgeList(r, minNodes)
}

// NewModel validates an initiator and Kronecker power K and returns the
// SKG model on 2^K nodes.
func NewModel(init Initiator, k int) (Model, error) { return skg.NewModel(init, k) }

// EstimatePrivate runs the paper's Algorithm 1: an (ε, δ)-edge-
// differentially-private estimate of the SKG initiator of g.
func EstimatePrivate(g *Graph, opts PrivateOptions) (*PrivateResult, error) {
	return core.Estimate(g, opts)
}

// EstimatePrivateCtx is EstimatePrivate under a pipeline Run: the
// run's context is checked between and inside the algorithm stages
// (cancellation aborts with the context's error, never a perturbed
// result), the run's worker budget replaces opts.Workers, and one
// progress event pair per Algorithm 1 stage is emitted to the run's
// sink under the "algorithm1/" prefix.
func EstimatePrivateCtx(run *Run, g *Graph, opts PrivateOptions) (*PrivateResult, error) {
	return core.EstimateCtx(run, g, opts)
}

// FitMoment runs the non-private Gleich–Owen KronMom estimator on the
// exact features of g ("KronMom" in the paper's Table 1). k <= 0 infers
// the smallest adequate Kronecker power.
func FitMoment(g *Graph, k int, opts MomentOptions) (MomentEstimate, error) {
	return kronmom.FitGraph(g, k, opts)
}

// FitMomentFeatures runs KronMom directly on a feature vector, which is
// how Algorithm 1 consumes its private features.
func FitMomentFeatures(f Features, k int, opts MomentOptions) (MomentEstimate, error) {
	return kronmom.Fit(f, k, opts)
}

// FitMomentCtx is FitMoment under a pipeline Run (cancellable,
// progress-reporting; see EstimatePrivateCtx for the contract).
func FitMomentCtx(run *Run, g *Graph, k int, opts MomentOptions) (MomentEstimate, error) {
	return kronmom.FitGraphCtx(run, g, k, opts)
}

// FitMLE runs the non-private KronFit approximate maximum-likelihood
// estimator ("KronFit" in the paper's Table 1).
func FitMLE(g *Graph, opts MLEOptions) (MLEResult, error) {
	return kronfit.Fit(g, opts)
}

// FitMLECtx is FitMLE under a pipeline Run: cancellation is checked
// once per gradient iteration and the "kronfit" stage reports an
// incremental progress fraction.
func FitMLECtx(run *Run, g *Graph, opts MLEOptions) (MLEResult, error) {
	return kronfit.FitCtx(run, g, opts)
}

// FeaturesOf computes the exact matching features (edges, hairpins,
// tripins, triangles) of g.
func FeaturesOf(g *Graph) Features { return stats.FeaturesOf(g) }

// FeaturesOfCtx is FeaturesOf under a pipeline Run.
func FeaturesOfCtx(run *Run, g *Graph) (Features, error) {
	return stats.FeaturesOfCtx(run, g)
}

// HopPlotCtx is HopPlot under a pipeline Run.
func HopPlotCtx(run *Run, g *Graph) ([]int64, error) {
	return stats.HopPlotCtx(run, g)
}

// ApproxHopPlotCtx is ApproxHopPlot under a pipeline Run.
func ApproxHopPlotCtx(run *Run, g *Graph, trials int, rng *Rand) ([]float64, error) {
	return anf.HopPlotCtx(run, g, anf.Options{Trials: trials, Rng: rng})
}

// HopPlot returns the exact cumulative hop plot of g (ordered pairs,
// including self-pairs, within h hops) by all-source BFS.
func HopPlot(g *Graph) []int64 { return stats.HopPlot(g) }

// ApproxHopPlot estimates the hop plot with ANF sketches; trials
// controls accuracy (32 is typical).
func ApproxHopPlot(g *Graph, trials int, rng *Rand) []float64 {
	return anf.HopPlot(g, anf.Options{Trials: trials, Rng: rng})
}

// DegreeDistribution returns (degree, node count) pairs sorted by degree.
func DegreeDistribution(g *Graph) []DegreePoint { return stats.DegreeDistribution(g) }

// ClusteringByDegree returns the average local clustering coefficient
// per node degree.
func ClusteringByDegree(g *Graph) []DegreePoint { return stats.ClusteringByDegree(g) }

// ScreeValues returns the top-k singular values of the adjacency matrix,
// descending (the paper's scree plot series).
func ScreeValues(g *Graph, k int, rng *Rand) []float64 { return linalg.ScreeValues(g, k, rng) }

// NetworkValues returns the sorted absolute components of the principal
// eigenvector (the paper's network-value series).
func NetworkValues(g *Graph, rng *Rand) []float64 { return linalg.NetworkValues(g, rng) }

// Triangles returns the exact triangle count of g.
func Triangles(g *Graph) int64 { return stats.Triangles(g) }
