package dpkron_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dpkron/internal/obs"
	"dpkron/internal/server"
)

// PR 9 threads telemetry (metrics, structured logs, stage tracing,
// pprof) through every serving layer. Observation must never perturb
// the observed: a fit served by a fully instrumented server — registry
// attached, logger running, pprof mounted — must release the exact
// PR 2 bits. This test re-pins the historical fingerprints through the
// instrumented HTTP path.

// TestFingerprintInstrumentedServer fits the PR 2 graph (eps=0.5,
// delta=0.01, k=10, seed=9) through a server with every observability
// feature enabled and checks the released initiator and features
// against the PR 2 pins.
func TestFingerprintInstrumentedServer(t *testing.T) {
	const (
		wantInit  = uint64(0x1c23d17293445957)
		wantFeats = uint64(0x297d918e6156a3fb)
	)
	g := fpGraphK10(t)
	var el strings.Builder
	if err := g.WriteEdgeList(&el); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	logger, err := obs.NewLogger(io.Discard, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Options{
		Workers:     4,
		MaxJobs:     2,
		MaxQueue:    8,
		Metrics:     reg,
		Logger:      logger,
		EnablePprof: true,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(map[string]any{
		"method": "private", "eps": 0.5, "delta": 0.01,
		"k": 10, "seed": 9, "edgelist": el.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/fit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("fit response carries no X-Request-ID")
	}
	var job struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fit submit: status %d", resp.StatusCode)
	}

	var result struct {
		Initiator struct{ A, B, C float64 } `json:"initiator"`
		Features  *struct {
			E, H, T, Delta float64
		} `json:"features"`
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		r2, err := http.Get(ts.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v struct {
			Status string          `json:"status"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.NewDecoder(r2.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if v.Status == "done" {
			if err := json.Unmarshal(v.Result, &result); err != nil {
				t.Fatal(err)
			}
			break
		}
		if v.Status == "failed" || v.Status == "cancelled" {
			t.Fatalf("fit job %s: %s (%s)", job.ID, v.Status, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("fit job %s did not finish", job.ID)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if fp := fpHashFloats(result.Initiator.A, result.Initiator.B, result.Initiator.C); fp != wantInit {
		t.Errorf("instrumented init fingerprint = %#x, want %#x (PR 2)", fp, wantInit)
	}
	if result.Features == nil {
		t.Fatal("fit result carries no features")
	}
	if fp := fpHashFloats(result.Features.E, result.Features.H, result.Features.T, result.Features.Delta); fp != wantFeats {
		t.Errorf("instrumented features fingerprint = %#x, want %#x (PR 2)", fp, wantFeats)
	}

	// The exposition must cover the serving tier: one family per
	// instrumented subsystem present in this configuration.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, fam := range []string{
		"dpkron_http_requests_total",
		"dpkron_http_request_seconds",
		"dpkron_jobs_submitted_total",
		"dpkron_jobs_completed_total",
		"dpkron_job_stage_seconds",
	} {
		if !strings.Contains(text, "# TYPE "+fam) {
			t.Errorf("/metrics is missing family %s", fam)
		}
	}

	// pprof is mounted and answers.
	presp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: status %d", presp.StatusCode)
	}
}
