package dpkron_test

import (
	"context"
	"fmt"
	"hash/fnv"
	"testing"

	"dpkron/internal/anf"
	"dpkron/internal/core"
	"dpkron/internal/experiments"
	"dpkron/internal/graph"
	"dpkron/internal/kronfit"
	"dpkron/internal/kronmom"
	"dpkron/internal/linalg"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
	"dpkron/internal/smoothsens"
	"dpkron/internal/stats"
)

// The hashes below were captured from the PR 2 tree (commit ed4a889),
// before the context-aware pipeline refactor. They pin the released
// bits of every refactored path: samplers, Algorithm 1, both baseline
// estimators, ANF, smooth sensitivity, the spectral series, and the
// epsilon sweep. Each case runs both the historical blocking entry
// point and its ...Ctx variant under a live cancellable context; all
// three values must agree.

func fpHashGraph(g *graph.Graph) uint64 {
	h := fnv.New64a()
	g.ForEachEdge(func(u, v int) {
		fmt.Fprintf(h, "%d,%d;", u, v)
	})
	return h.Sum64()
}

func fpHashFloats(xs ...float64) uint64 {
	h := fnv.New64a()
	for _, x := range xs {
		fmt.Fprintf(h, "%.17g;", x)
	}
	return h.Sum64()
}

// liveRun returns a Run whose context carries a cancellation signal
// that never fires, so the ctx-aware code paths (not the background
// fast paths) are exercised. Shared with the PipelineOverhead
// benchmarks, which must measure exactly the path these tests pin.
func liveRun(tb testing.TB, workers int) *pipeline.Run {
	tb.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	tb.Cleanup(cancel)
	return pipeline.New(ctx, workers, nil)
}

func fpGraphK10(t *testing.T) *graph.Graph {
	t.Helper()
	m, err := skg.NewModel(skg.Initiator{A: 0.99, B: 0.55, C: 0.35}, 10)
	if err != nil {
		t.Fatal(err)
	}
	g := m.SampleExactWorkers(randx.New(42), 4)
	return g
}

func TestFingerprintSamplers(t *testing.T) {
	m, _ := skg.NewModel(skg.Initiator{A: 0.99, B: 0.55, C: 0.35}, 10)
	const wantExact = uint64(0x6c10859be86b36ad)
	if got := fpHashGraph(m.SampleExactWorkers(randx.New(42), 4)); got != wantExact {
		t.Errorf("SampleExactWorkers fingerprint = %#x, want %#x (PR 2)", got, wantExact)
	}
	gc, err := m.SampleExactCtx(liveRun(t, 4), randx.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if got := fpHashGraph(gc); got != wantExact {
		t.Errorf("SampleExactCtx fingerprint = %#x, want %#x (PR 2)", got, wantExact)
	}

	mb, _ := skg.NewModel(skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, 12)
	const wantDrop = uint64(0x782fb2c09f8882ef)
	if got := fpHashGraph(mb.SampleBallDropNWorkers(randx.New(7), 3000, 4)); got != wantDrop {
		t.Errorf("SampleBallDropNWorkers fingerprint = %#x, want %#x (PR 2)", got, wantDrop)
	}
	gd, err := mb.SampleBallDropNCtx(liveRun(t, 4), randx.New(7), 3000)
	if err != nil {
		t.Fatal(err)
	}
	if got := fpHashGraph(gd); got != wantDrop {
		t.Errorf("SampleBallDropNCtx fingerprint = %#x, want %#x (PR 2)", got, wantDrop)
	}
}

func TestFingerprintEstimateAndFeatures(t *testing.T) {
	g := fpGraphK10(t)
	const (
		wantInit  = uint64(0x1c23d17293445957)
		wantFeats = uint64(0x297d918e6156a3fb)
		wantExact = uint64(0x42b1d41f1ac6a497)
	)
	check := func(label string, res *core.Result, err error) {
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if got := fpHashFloats(res.Init.A, res.Init.B, res.Init.C); got != wantInit {
			t.Errorf("%s init fingerprint = %#x, want %#x (PR 2)", label, got, wantInit)
		}
		if got := fpHashFloats(res.Features.E, res.Features.H, res.Features.T, res.Features.Delta); got != wantFeats {
			t.Errorf("%s features fingerprint = %#x, want %#x (PR 2)", label, got, wantFeats)
		}
	}
	res, err := core.Estimate(g, core.Options{Eps: 0.5, Delta: 0.01, Rng: randx.New(9), Workers: 4})
	check("Estimate", res, err)
	res, err = core.EstimateCtx(liveRun(t, 4), g, core.Options{Eps: 0.5, Delta: 0.01, Rng: randx.New(9)})
	check("EstimateCtx", res, err)

	if got := fpHashFloats(featSlice(stats.FeaturesOfWorkers(g, 4))...); got != wantExact {
		t.Errorf("FeaturesOfWorkers fingerprint = %#x, want %#x (PR 2)", got, wantExact)
	}
	fc, err := stats.FeaturesOfCtx(liveRun(t, 4), g)
	if err != nil {
		t.Fatal(err)
	}
	if got := fpHashFloats(featSlice(fc)...); got != wantExact {
		t.Errorf("FeaturesOfCtx fingerprint = %#x, want %#x (PR 2)", got, wantExact)
	}
}

func featSlice(f stats.Features) []float64 { return []float64{f.E, f.H, f.T, f.Delta} }

func TestFingerprintBaselineEstimators(t *testing.T) {
	g := fpGraphK10(t)
	const wantKF = uint64(0x9bbc8c400e943082)
	kf, err := kronfit.Fit(g, kronfit.Options{K: 10, Iters: 12, Rng: randx.New(13), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := fpHashFloats(kf.Init.A, kf.Init.B, kf.Init.C, kf.LogLikelihood); got != wantKF {
		t.Errorf("kronfit.Fit fingerprint = %#x, want %#x (PR 2)", got, wantKF)
	}
	kfc, err := kronfit.FitCtx(liveRun(t, 4), g, kronfit.Options{K: 10, Iters: 12, Rng: randx.New(13)})
	if err != nil {
		t.Fatal(err)
	}
	if got := fpHashFloats(kfc.Init.A, kfc.Init.B, kfc.Init.C, kfc.LogLikelihood); got != wantKF {
		t.Errorf("kronfit.FitCtx fingerprint = %#x, want %#x (PR 2)", got, wantKF)
	}

	const wantKM = uint64(0x25efa408aca92c5f)
	km, err := kronmom.FitGraph(g, 10, kronmom.Options{Rng: randx.New(17), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := fpHashFloats(km.Init.A, km.Init.B, km.Init.C, km.Objective); got != wantKM {
		t.Errorf("kronmom.FitGraph fingerprint = %#x, want %#x (PR 2)", got, wantKM)
	}
	kmc, err := kronmom.FitGraphCtx(liveRun(t, 4), g, 10, kronmom.Options{Rng: randx.New(17)})
	if err != nil {
		t.Fatal(err)
	}
	if got := fpHashFloats(kmc.Init.A, kmc.Init.B, kmc.Init.C, kmc.Objective); got != wantKM {
		t.Errorf("kronmom.FitGraphCtx fingerprint = %#x, want %#x (PR 2)", got, wantKM)
	}
}

func TestFingerprintStatisticsPaths(t *testing.T) {
	g := fpGraphK10(t)

	const wantANF = uint64(0xaf33ea602570793)
	if got := fpHashFloats(anf.HopPlot(g, anf.Options{Trials: 16, Rng: randx.New(21), Workers: 4})...); got != wantANF {
		t.Errorf("anf.HopPlot fingerprint = %#x, want %#x (PR 2)", got, wantANF)
	}
	hc, err := anf.HopPlotCtx(liveRun(t, 4), g, anf.Options{Trials: 16, Rng: randx.New(21)})
	if err != nil {
		t.Fatal(err)
	}
	if got := fpHashFloats(hc...); got != wantANF {
		t.Errorf("anf.HopPlotCtx fingerprint = %#x, want %#x (PR 2)", got, wantANF)
	}

	const wantSS = uint64(0x982b28ed09bc9fe4)
	tri := smoothsens.PrivateTrianglesWorkers(g, 0.3, 0.01, randx.New(23), 4)
	if got := fpHashFloats(tri.Noisy, float64(tri.Exact), tri.SmoothSen, tri.Scale); got != wantSS {
		t.Errorf("PrivateTrianglesWorkers fingerprint = %#x, want %#x (PR 2)", got, wantSS)
	}
	tric, err := smoothsens.PrivateTrianglesCtx(liveRun(t, 4), g, 0.3, 0.01, randx.New(23))
	if err != nil {
		t.Fatal(err)
	}
	if got := fpHashFloats(tric.Noisy, float64(tric.Exact), tric.SmoothSen, tric.Scale); got != wantSS {
		t.Errorf("PrivateTrianglesCtx fingerprint = %#x, want %#x (PR 2)", got, wantSS)
	}

	const wantScree = uint64(0x15b0b395a249059)
	if got := fpHashFloats(linalg.ScreeValues(g, 16, randx.New(29))...); got != wantScree {
		t.Errorf("ScreeValues fingerprint = %#x, want %#x (PR 2)", got, wantScree)
	}
	sc, err := linalg.ScreeValuesCtx(liveRun(t, 1), g, 16, randx.New(29))
	if err != nil {
		t.Fatal(err)
	}
	if got := fpHashFloats(sc...); got != wantScree {
		t.Errorf("ScreeValuesCtx fingerprint = %#x, want %#x (PR 2)", got, wantScree)
	}

	const wantNet = uint64(0x908559add58d1d35)
	nv := linalg.NetworkValues(g, randx.New(31))
	if got := fpHashFloats(nv[:32]...); got != wantNet {
		t.Errorf("NetworkValues fingerprint = %#x, want %#x (PR 2)", got, wantNet)
	}
	nvc, err := linalg.NetworkValuesCtx(liveRun(t, 1), g, randx.New(31))
	if err != nil {
		t.Fatal(err)
	}
	if got := fpHashFloats(nvc[:32]...); got != wantNet {
		t.Errorf("NetworkValuesCtx fingerprint = %#x, want %#x (PR 2)", got, wantNet)
	}
}

func TestFingerprintEpsilonSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep fingerprint is slow")
	}
	g := fpGraphK10(t)
	const wantSweep = uint64(0x72b37f8215b9d1ca)
	hashRows := func(rows []experiments.SweepRow) uint64 {
		var vals []float64
		for _, r := range rows {
			vals = append(vals, r.Eps, r.MeanParamDiff, r.MeanFeatureErr)
		}
		return fpHashFloats(vals...)
	}
	rows, err := experiments.EpsilonSweepWorkers(g, 10, []float64{0.2, 1}, 0.01, 2, 37, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := hashRows(rows); got != wantSweep {
		t.Errorf("EpsilonSweepWorkers fingerprint = %#x, want %#x (PR 2)", got, wantSweep)
	}
	rowsC, err := experiments.EpsilonSweepCtx(liveRun(t, 4), g, 10, []float64{0.2, 1}, 0.01, 2, 37)
	if err != nil {
		t.Fatal(err)
	}
	if got := hashRows(rowsC); got != wantSweep {
		t.Errorf("EpsilonSweepCtx fingerprint = %#x, want %#x (PR 2)", got, wantSweep)
	}
}
